"""Additional channel-contract tests (mirror primitives, weighted costs)."""

import numpy as np
import pytest

from repro.model.channel import Channel
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray
from repro.util.intervals import Interval


def make_channel(values, seed=0, **kwargs):
    nodes = NodeArray(len(values))
    nodes.deliver(np.asarray(values, dtype=float))
    led = CostLedger(**{k: v for k, v in kwargs.items() if k == "broadcast_cost"})
    base = kwargs.get("existence_base", 2.0)
    return Channel(nodes, led, seed, existence_base=base), nodes, led


class TestExistenceBelow:
    def test_collects_only_below(self):
        ch, _, _ = make_channel([1.0, 5.0, 9.0])
        ids, values = ch.existence_below(5.0)
        assert set(ids.tolist()) <= {0}
        assert all(v == 1.0 for v in values)

    def test_nonstrict_and_exclude(self):
        ch, _, _ = make_channel([1.0, 5.0, 9.0])
        ids, _ = ch.existence_below(5.0, strict=False, exclude=np.array([0]))
        assert set(ids.tolist()) <= {1}

    def test_silent_is_free(self):
        ch, _, led = make_channel([5.0, 9.0])
        ids, _ = ch.existence_below(1.0)
        assert ids.size == 0 and led.messages == 0


class TestReportViolationsAll:
    def test_all_violators_report(self):
        ch, nodes, led = make_channel([10.0, 20.0, 30.0])
        nodes.set_filters_bulk(np.arange(3), 0.0, 15.0)
        reports = ch.report_violations_all()
        assert [r.node for r in reports] == [1, 2]
        assert led.node_to_server == 2

    def test_silent_is_free(self):
        ch, _, led = make_channel([1.0, 2.0])
        assert ch.report_violations_all() == []
        assert led.messages == 0


class TestWeightedBroadcasts:
    def test_messages_weighted(self):
        ch, _, led = make_channel([1.0, 2.0, 3.0], broadcast_cost=3)
        ch.announce()
        assert led.broadcasts == 1
        assert led.messages == 3

    def test_scope_attribution_weighted(self):
        ch, _, led = make_channel([1.0, 2.0], broadcast_cost=5)
        with led.scope("s"):
            ch.announce()
        assert led.by_scope()["s"] == 5

    def test_snapshot_carries_weight(self):
        led = CostLedger(broadcast_cost=4)
        before = led.snapshot()
        led.charge_broadcast()
        delta = led.snapshot() - before
        assert delta.messages == 4


class TestExistenceBaseVariants:
    @pytest.mark.parametrize("base", [1.5, 4.0, 16.0])
    def test_correctness_for_any_base(self, base):
        for seed in range(20):
            ch, _, _ = make_channel([0.0] * 32, seed=seed, existence_base=base)
            mask = np.zeros(32, dtype=bool)
            mask[5] = True
            assert ch.existence_any(mask)
            assert not ch.existence_any(np.zeros(32, dtype=bool))

    def test_larger_base_fewer_max_rounds(self):
        ch2, _, _ = make_channel([0.0] * 256, existence_base=2.0)
        ch8, _, _ = make_channel([0.0] * 256, existence_base=8.0)
        assert ch8._gamma < ch2._gamma


class TestFilterRoundtrip:
    def test_unicast_then_violation(self):
        ch, nodes, _ = make_channel([10.0, 50.0])
        ch.unicast_filter(1, Interval(0.0, 40.0))
        reports = ch.report_violations_all()
        assert len(reports) == 1 and reports[0].from_below
