"""Unit tests for :mod:`repro.model.engine`."""

import numpy as np
import pytest

from repro.model.engine import MonitoringEngine
from repro.model.invariants import InvariantViolation
from repro.model.protocol import MonitoringAlgorithm
from repro.streams.base import Trace
from repro.util.intervals import Interval


class FixedOutputAlgorithm(MonitoringAlgorithm):
    """Claims nodes {0} forever and sets honest filters once."""

    name = "fixed"

    def __init__(self, k: int = 1):
        super().__init__()
        self.k = k

    def on_start(self) -> None:
        n = self.channel.n
        self.channel.broadcast_filters(
            [
                (np.arange(1, n), Interval.at_most(100.0)),
                (np.array([0]), Interval.at_least(100.0)),
            ]
        )

    def on_step(self) -> None:
        pass

    def output(self) -> frozenset[int]:
        return frozenset({0})


def stable_trace(T=5, n=3):
    data = np.tile(np.array([200.0, 50.0, 10.0]), (T, 1))
    return Trace(data[:, :n])


class TestEngineBasics:
    def test_runs_and_counts(self):
        tr = stable_trace()
        eng = MonitoringEngine(tr, FixedOutputAlgorithm(), k=1, check=True)
        res = eng.run()
        assert res.num_steps == 5
        assert res.messages == 1  # the single startup broadcast
        assert len(res.ledger.per_step) == 5
        assert res.outputs == [frozenset({0})] * 5
        assert res.output_changes == 0

    def test_cumulative_messages(self):
        tr = stable_trace()
        res = MonitoringEngine(tr, FixedOutputAlgorithm(), k=1).run()
        assert res.cumulative_messages.tolist() == [1, 1, 1, 1, 1]

    def test_record_outputs_toggle(self):
        tr = stable_trace()
        res = MonitoringEngine(tr, FixedOutputAlgorithm(), k=1, record_outputs=False).run()
        assert res.outputs == []

    def test_source_type_checked(self):
        with pytest.raises(TypeError, match="ValueSource"):
            MonitoringEngine(object(), FixedOutputAlgorithm(), k=1)


class TestVerification:
    def test_catches_invalid_output(self):
        # Values make node 0 NOT the top-1 → fixed output invalid.
        data = np.tile(np.array([10.0, 50.0, 200.0]), (3, 1))
        eng = MonitoringEngine(Trace(data), FixedOutputAlgorithm(), k=1, check=True)
        with pytest.raises(InvariantViolation, match="invalid output"):
            eng.run()

    def test_catches_unsettled_filters(self):
        class NeverSettles(FixedOutputAlgorithm):
            def on_start(self) -> None:
                n = self.channel.n
                # Filters that exclude the actual values of node 1+.
                self.channel.broadcast_filters(
                    [
                        (np.arange(1, n), Interval(0.0, 1.0)),
                        (np.array([0]), Interval.at_least(1.0)),
                    ]
                )

        eng = MonitoringEngine(stable_trace(), NeverSettles(), k=1, check=True)
        with pytest.raises(InvariantViolation, match="did not settle"):
            eng.run()

    def test_non_filter_based_skips_filter_laws(self):
        class NoFilters(FixedOutputAlgorithm):
            filter_based = False

            def on_start(self) -> None:
                pass  # never assigns filters

        res = MonitoringEngine(stable_trace(), NoFilters(), k=1, check=True).run()
        assert res.messages == 0


class TestModelKnobs:
    def test_broadcast_cost_weighting(self):
        tr = stable_trace()
        unit = MonitoringEngine(tr, FixedOutputAlgorithm(), k=1).run()
        priced = MonitoringEngine(
            tr, FixedOutputAlgorithm(), k=1, broadcast_cost=tr.n
        ).run()
        # The single startup broadcast costs n in the plain model.
        assert unit.messages == 1
        assert priced.messages == tr.n

    def test_existence_base_plumbing(self):
        tr = stable_trace()
        engine = MonitoringEngine(tr, FixedOutputAlgorithm(), k=1, existence_base=4.0)
        assert engine.channel.existence_base == 4.0
        engine.run()

    def test_bad_existence_base_rejected(self):
        import numpy as np

        from repro.model.channel import Channel
        from repro.model.node import NodeArray

        nodes = NodeArray(4)
        nodes.deliver(np.zeros(4))
        with pytest.raises(ValueError, match="existence_base"):
            Channel(nodes, existence_base=1.0)

    def test_bad_broadcast_cost_rejected(self):
        from repro.model.ledger import CostLedger

        with pytest.raises(ValueError, match="broadcast_cost"):
            CostLedger(broadcast_cost=0)


class TestAlgorithmLifecycle:
    def test_double_bind_rejected(self):
        algo = FixedOutputAlgorithm()
        MonitoringEngine(stable_trace(), algo, k=1).run()
        with pytest.raises(RuntimeError, match="already bound"):
            MonitoringEngine(stable_trace(), algo, k=1).run()

    def test_channel_before_bind_rejected(self):
        with pytest.raises(RuntimeError, match="not bound"):
            _ = FixedOutputAlgorithm().channel

    def test_output_changes_counted(self):
        class Flapper(FixedOutputAlgorithm):
            filter_based = False

            def __init__(self):
                super().__init__()
                self._t = 0

            def on_start(self) -> None:
                pass

            def on_step(self) -> None:
                self._t += 1

            def output(self) -> frozenset[int]:
                return frozenset({self._t % 2})

        data = np.tile(np.array([5.0, 5.0, 1.0]), (4, 1))
        res = MonitoringEngine(Trace(data), Flapper(), k=1).run()
        assert res.output_changes == 3
