"""The cohort law at the model layer: EngineBatch ≡ serial, bit for bit.

:class:`~repro.model.engine.EngineBatch` advances S same-width engines
in one vectorized pass by skipping the algorithm entirely on steps it
*proves* violation-free.  The law it must satisfy: for every member the
run is indistinguishable from driving that engine alone — same outputs,
same per-step cost series, same node state, and (the strongest form)
the same pickle bytes, because session checkpoints are compared as raw
bytes by the differential fuzz tier.

Quiet-step declarations are part of that law: an algorithm advertising
``quiet_step_rounds() == R`` promises a violation-free step is exactly
R rounds of pure bookkeeping, so the batch can replay Q of them in one
ledger call (:meth:`MonitoringEngine._record_quiet_steps`).
"""

import pickle

import numpy as np
import pytest

from repro.core import (
    ApproxTopKMonitor,
    ExactTopKMonitor,
    HalfEpsMonitor,
    SendAlwaysMonitor,
    TopKMonitor,
)
from repro.core.naive import SendOnChangeMonitor
from repro.model.engine import EngineBatch, MonitoringEngine
from repro.model.protocol import MonitoringAlgorithm

N, K, EPS = 6, 2, 0.25


def make_engine(factory, *, n=N, seed=11, record_outputs=True, check=False):
    eng = MonitoringEngine(
        None, factory(), k=K, eps=EPS, seed=seed, n=n,
        record_outputs=record_outputs, check=check,
    )
    eng.start()
    return eng


def walk_blocks(T, S, n=N, seed=0, jump_every=9):
    """S random walks with occasional large jumps (mix of quiet + escalation)."""
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(0, 0.5, size=(T, S, n)), axis=0) + 50.0
    jumps = rng.uniform(20, 60, size=(T, S, n)) * (rng.random((T, S, n)) < 1 / jump_every)
    data = np.abs(base + jumps)
    return [np.ascontiguousarray(data[:, i, :]) for i in range(S)]


FACTORIES = [
    pytest.param(lambda: ApproxTopKMonitor(K, EPS), id="approx"),
    pytest.param(lambda: ExactTopKMonitor(K), id="exact"),
    pytest.param(lambda: TopKMonitor(K, EPS), id="topk"),
    pytest.param(lambda: HalfEpsMonitor(K, EPS), id="halfeps"),
]


class TestQuietStepRounds:
    def test_existence_detector_costs_gamma_plus_one(self):
        eng = make_engine(lambda: ApproxTopKMonitor(K, EPS))
        assert eng.quiet_step_rounds() == eng.channel.existence_rounds
        assert eng.channel.existence_rounds == eng.channel._gamma + 1

    def test_direct_detector_costs_one_round(self):
        eng = make_engine(lambda: ExactTopKMonitor(K, use_existence=False))
        assert eng.quiet_step_rounds() == 1

    def test_default_is_opt_out(self):
        class Plain(MonitoringAlgorithm):
            name = "plain"

            def on_start(self):
                pass

            def on_step(self):
                pass

            def output(self):
                return frozenset(range(K))

        assert Plain().quiet_step_rounds() is None
        assert SendAlwaysMonitor(K).quiet_step_rounds() is None

    def test_send_on_change_uses_existence(self):
        eng = make_engine(lambda: SendOnChangeMonitor(K))
        assert eng.quiet_step_rounds() == eng.channel.existence_rounds


class TestBatchGuards:
    def test_rejects_mixed_widths(self):
        a = make_engine(lambda: ApproxTopKMonitor(K, EPS), n=4)
        b = make_engine(lambda: ApproxTopKMonitor(K, EPS), n=6)
        with pytest.raises(ValueError, match="mixed widths"):
            EngineBatch([a, b])

    def test_rejects_non_batchable(self):
        opted_out = make_engine(lambda: SendAlwaysMonitor(K))
        assert not opted_out.batchable
        with pytest.raises(ValueError, match="not batchable"):
            EngineBatch([opted_out])
        checking = make_engine(lambda: ApproxTopKMonitor(K, EPS), check=True)
        assert not checking.batchable

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            EngineBatch([])

    def test_advance_after_close_raises(self):
        eng = make_engine(lambda: ApproxTopKMonitor(K, EPS))
        batch = EngineBatch([eng])
        batch.close()
        batch.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            batch.advance_batch([np.zeros((1, N))])

    def test_close_unbinds_private_arrays(self):
        eng = make_engine(lambda: ApproxTopKMonitor(K, EPS))
        batch = EngineBatch([eng])
        bound = eng.nodes.values
        batch.close()
        assert eng.nodes.values is not bound
        assert eng.nodes.values.base is None  # owns its memory again


class TestCohortLaw:
    @pytest.mark.parametrize("factory", FACTORIES)
    @pytest.mark.parametrize("record", [True, False], ids=["record", "norecord"])
    def test_batched_equals_serial(self, factory, record):
        S, T = 5, 64
        blocks = walk_blocks(T, S, seed=3)
        batched = [
            make_engine(factory, seed=100 + i, record_outputs=record)
            for i in range(S)
        ]
        serial = [
            make_engine(factory, seed=100 + i, record_outputs=record)
            for i in range(S)
        ]
        # Two chunks: the second tick starts from already-advanced state.
        for lo, hi in ((0, T // 2), (T // 2, T)):
            batch = EngineBatch(batched)
            try:
                errors = batch.advance_batch([b[lo:hi] for b in blocks])
            finally:
                batch.close()
            assert errors == [None] * S
            for eng, block in zip(serial, blocks):
                eng.advance(block[lo:hi], prevalidated=True)
        for got, want in zip(batched, serial):
            assert got.steps_done == want.steps_done == T
            assert got.ledger.messages == want.ledger.messages
            assert got.ledger.rounds == want.ledger.rounds
            assert got.ledger.per_step.tolist() == want.ledger.per_step.tolist()
            assert got.current_output() == want.current_output()
            assert np.array_equal(got.nodes.values, want.nodes.values)
            # The strongest form: checkpoints are compared as raw bytes.
            assert pickle.dumps(got, protocol=pickle.HIGHEST_PROTOCOL) == \
                pickle.dumps(want, protocol=pickle.HIGHEST_PROTOCOL)
        for got, want in zip(batched, serial):
            a, b = got.finalize(), want.finalize()
            assert a.messages == b.messages
            assert a.output_changes == b.output_changes
            if record:
                assert a.outputs == b.outputs

    def test_bulk_quiet_replay_outgrows_row_buffer(self):
        """A quiet run longer than the row buffer must grow it correctly."""
        from repro.model import engine as engine_mod

        T = engine_mod._INITIAL_ROWS + 40
        S = 2
        rng = np.random.default_rng(7)
        # Near-constant streams: after the start escalation everything is quiet.
        blocks = [
            np.abs(50.0 + rng.normal(0, 1e-6, size=(T, N))) for _ in range(S)
        ]
        batched = [make_engine(lambda: ApproxTopKMonitor(K, EPS), seed=i) for i in range(S)]
        serial = [make_engine(lambda: ApproxTopKMonitor(K, EPS), seed=i) for i in range(S)]
        batch = EngineBatch(batched)
        try:
            assert batch.advance_batch(blocks) == [None] * S
        finally:
            batch.close()
        for eng, block in zip(serial, blocks):
            eng.advance(block, prevalidated=True)
        for got, want in zip(batched, serial):
            assert got.steps_done == want.steps_done == T
            assert pickle.dumps(got, protocol=pickle.HIGHEST_PROTOCOL) == \
                pickle.dumps(want, protocol=pickle.HIGHEST_PROTOCOL)
