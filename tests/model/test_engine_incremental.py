"""The incremental engine drive: start()/advance()/finalize().

Three concerns:

1. **Parity** — driving a run in arbitrary chunks (including a pushed,
   source-less engine) must reproduce ``run()`` exactly: messages,
   per-step series, outputs, change counts.
2. **Irregular-output fallback** — outputs of size ≠ k must leave the
   vectorized fast path and keep counting correctly, in all four
   record/no-record × regular-prefix combinations, pinned against a
   reference loop.
3. **Accounting law** — messages charged after ``end_step()`` (e.g.
   from ``output()`` side effects) are folded into the step they
   reacted to, and finalize audits ``sum(per_step) == messages``.
"""

import numpy as np
import pytest

from repro.core import ApproxTopKMonitor
from repro.model.engine import MonitoringEngine
from repro.model.protocol import MonitoringAlgorithm
from repro.streams import registry
from repro.streams.base import Trace


class ScriptedOutputs(MonitoringAlgorithm):
    """Emits a pre-scripted output per step; no filters, no messages."""

    name = "scripted"
    filter_based = False

    def __init__(self, script: list[frozenset[int]]):
        super().__init__()
        self._script = script
        self._t = -1

    def on_start(self) -> None:
        self._t = 0

    def on_step(self) -> None:
        self._t += 1

    def output(self) -> frozenset[int]:
        return self._script[self._t]


class ChargesInOutput(ScriptedOutputs):
    """Additionally polls node 0 inside output() — a post-end_step charge."""

    name = "charges-in-output"

    def __init__(self, script, every: int = 3):
        super().__init__(script)
        self.every = every

    def output(self) -> frozenset[int]:
        if self._t % self.every == 0:
            self.channel.request_value(0)  # cost 2, charged after end_step()
        return super().output()


def reference_changes(outputs: list[frozenset[int]]) -> int:
    """The definition: one change per step whose output differs from its
    predecessor's."""
    return sum(1 for a, b in zip(outputs, outputs[1:]) if a != b)


def small_trace(T=20, n=6, seed=0):
    rng = np.random.default_rng(seed)
    return Trace(np.round(rng.uniform(10, 1000, size=(T, n))))


def run_result_fields(res):
    return (
        res.messages,
        res.num_steps,
        res.output_changes,
        res.outputs,
        res.ledger.per_step.tolist(),
        res.ledger.by_scope(),
    )


class TestIncrementalParity:
    @pytest.mark.parametrize("block_sizes", [[1] * 40, [7, 13, 20], [40], [39, 1]])
    def test_chunked_drive_matches_run(self, block_sizes):
        assert sum(block_sizes) == 40
        T, n, k, eps = 40, 12, 3, 0.2
        trace = registry.make("zipf", T, n, rng=5)
        ref = MonitoringEngine(
            trace, ApproxTopKMonitor(k, eps), k=k, eps=eps, seed=11
        ).run()

        engine = MonitoringEngine(
            None, ApproxTopKMonitor(k, eps), k=k, eps=eps, seed=11, n=n
        )
        engine.start()
        pos = 0
        for size in block_sizes:
            engine.advance(trace.data[pos : pos + size])
            pos += size
        res = engine.finalize()
        assert run_result_fields(res) == run_result_fields(ref)

    def test_single_rows_accepted(self):
        trace = small_trace(T=8)
        ref = MonitoringEngine(
            trace, ScriptedOutputs([frozenset({0})] * 8), k=1
        ).run()
        engine = MonitoringEngine(
            None, ScriptedOutputs([frozenset({0})] * 8), k=1, n=trace.n
        )
        engine.start()
        for t in range(8):
            engine.advance(trace.data[t])  # 1-D row == 1-row block
        res = engine.finalize()
        assert run_result_fields(res) == run_result_fields(ref)

    def test_open_ended_buffer_growth(self):
        # More steps than the initial row capacity; exact-capacity run as ref.
        from repro.model import engine as engine_mod

        T = engine_mod._INITIAL_ROWS + 300
        n, k = 4, 2
        script = [frozenset({t % 2, 2 + t % 2}) for t in range(T)]
        rows = np.tile(np.array([9.0, 8.0, 7.0, 6.0]), (T, 1))
        ref = MonitoringEngine(Trace(rows), ScriptedOutputs(list(script)), k=k).run()

        engine = MonitoringEngine(None, ScriptedOutputs(list(script)), k=k, n=n)
        engine.start()  # no expect_steps: growth path
        engine.advance(rows)
        res = engine.finalize()
        assert res.num_steps == T
        assert res.output_changes == ref.output_changes == T - 1
        assert res.outputs == ref.outputs

    def test_mid_run_introspection(self):
        script = [frozenset({0}), frozenset({1}), frozenset({1}), frozenset({0})]
        engine = MonitoringEngine(None, ScriptedOutputs(script), k=1, n=3)
        engine.start()
        assert engine.steps_done == 0
        assert engine.current_output() is None
        engine.advance(np.ones((2, 3)))
        assert engine.steps_done == 2
        assert engine.current_output() == frozenset({1})
        assert engine.output_changes_so_far() == 1
        engine.advance(np.ones((2, 3)))
        assert engine.output_changes_so_far() == 2  # {0}->{1} and {1}->{0}


class TestLifecycleErrors:
    def test_push_engine_needs_n(self):
        with pytest.raises(TypeError, match="n="):
            MonitoringEngine(None, ScriptedOutputs([]), k=1)

    def test_n_contradicting_source(self):
        with pytest.raises(ValueError, match="contradicts"):
            MonitoringEngine(small_trace(n=6), ScriptedOutputs([]), k=1, n=4)

    def test_run_requires_source(self):
        engine = MonitoringEngine(None, ScriptedOutputs([]), k=1, n=3)
        with pytest.raises(RuntimeError, match="needs a value source"):
            engine.run()

    def test_advance_before_start(self):
        engine = MonitoringEngine(None, ScriptedOutputs([]), k=1, n=3)
        with pytest.raises(RuntimeError, match="start"):
            engine.advance(np.ones((1, 3)))

    def test_double_start(self):
        engine = MonitoringEngine(None, ScriptedOutputs([]), k=1, n=3)
        engine.start()
        with pytest.raises(RuntimeError, match="already started"):
            engine.start()

    def test_finalize_twice(self):
        engine = MonitoringEngine(None, ScriptedOutputs([frozenset({0})]), k=1, n=3)
        engine.start()
        engine.advance(np.ones((1, 3)))
        engine.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            engine.finalize()

    def test_advance_after_finalize(self):
        engine = MonitoringEngine(None, ScriptedOutputs([frozenset({0})]), k=1, n=3)
        engine.start()
        engine.advance(np.ones((1, 3)))
        engine.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            engine.advance(np.ones((1, 3)))

    def test_advance_validates_pushed_blocks(self):
        engine = MonitoringEngine(None, ScriptedOutputs([frozenset({0})] * 4), k=1, n=3)
        engine.start()
        with pytest.raises(ValueError, match="shape"):
            engine.advance(np.ones((2, 4)))
        with pytest.raises(ValueError, match="finite"):
            engine.advance(np.array([[1.0, np.inf, 3.0]]))


#: The four fallback combinations: record_outputs × whether a regular
#: (size == k) prefix precedes the first irregular output.
IRREGULAR_SCRIPTS = {
    "prefix": [
        frozenset({0, 1}), frozenset({0, 2}), frozenset({0, 2}),  # regular, k=2
        frozenset({0, 1, 2}),  # first irregular (size 3)
        frozenset({0, 1, 2}), frozenset({4}), frozenset({0, 3}), frozenset({0, 3}),
    ],
    "from-start": [
        frozenset({0, 1, 2}),  # irregular at t=0
        frozenset({0, 1}), frozenset({0, 1}), frozenset({4}),
        frozenset({4}), frozenset({2, 3}),
    ],
}


class TestIrregularOutputFallback:
    """Satellite: pin the size≠k fallback against the reference loop."""

    @pytest.mark.parametrize("record", [True, False], ids=["record", "no-record"])
    @pytest.mark.parametrize("shape", ["prefix", "from-start"])
    def test_run_matches_reference(self, record, shape):
        script = IRREGULAR_SCRIPTS[shape]
        T = len(script)
        trace = small_trace(T=T, n=6)
        res = MonitoringEngine(
            trace, ScriptedOutputs(list(script)), k=2, record_outputs=record
        ).run()
        assert res.output_changes == reference_changes(script)
        assert res.outputs == (script if record else [])
        assert res.outputs_array is None  # fallback left the compact path

    @pytest.mark.parametrize("record", [True, False], ids=["record", "no-record"])
    @pytest.mark.parametrize("shape", ["prefix", "from-start"])
    def test_incremental_matches_run(self, record, shape):
        script = IRREGULAR_SCRIPTS[shape]
        T = len(script)
        trace = small_trace(T=T, n=6)
        ref = MonitoringEngine(
            trace, ScriptedOutputs(list(script)), k=2, record_outputs=record
        ).run()
        engine = MonitoringEngine(
            None, ScriptedOutputs(list(script)), k=2, record_outputs=record, n=6
        )
        engine.start()
        # Split right at the first irregular step to stress the transition.
        split = 4 if shape == "prefix" else 1
        engine.advance(trace.data[:split])
        engine.advance(trace.data[split:])
        res = engine.finalize()
        assert run_result_fields(res) == run_result_fields(ref)

    def test_regular_run_keeps_compact_path(self):
        script = [frozenset({0, 1})] * 5
        res = MonitoringEngine(
            small_trace(T=5, n=6), ScriptedOutputs(script), k=2
        ).run()
        assert res.outputs_array is not None
        assert res.outputs == script


class TestLedgerAccounting:
    """Satellite: post-end_step charges must not vanish from per_step."""

    def test_output_side_effect_charges_are_folded(self):
        T, n = 10, 4
        script = [frozenset({0})] * T
        algo = ChargesInOutput(list(script), every=3)
        res = MonitoringEngine(small_trace(T=T, n=n), algo, k=1).run()
        # t = 0, 3, 6, 9 polled: 4 polls x cost 2.
        assert res.messages == 8
        # The accounting law — nothing vanished.
        assert sum(res.ledger.per_step) == res.messages
        # Each charge is attributed to the step whose output triggered it.
        assert res.ledger.per_step == [2, 0, 0, 2, 0, 0, 2, 0, 0, 2]

    def test_final_step_charge_is_flushed(self):
        # A charge on the very last step's output() has no following
        # begin_step(); finalize must fold it.
        T = 4
        algo = ChargesInOutput([frozenset({0})] * T, every=T - 1)  # t=0 and t=3
        res = MonitoringEngine(small_trace(T=T, n=4), algo, k=1).run()
        assert res.messages == 4
        assert res.ledger.per_step == [2, 0, 0, 2]

    def test_incremental_parity_with_output_charges(self):
        T, n = 12, 4
        trace = small_trace(T=T, n=n)
        script = [frozenset({0})] * T
        ref = MonitoringEngine(trace, ChargesInOutput(list(script)), k=1).run()
        engine = MonitoringEngine(None, ChargesInOutput(list(script)), k=1, n=n)
        engine.start()
        engine.advance(trace.data[:5])
        engine.advance(trace.data[5:])
        res = engine.finalize()
        assert run_result_fields(res) == run_result_fields(ref)

    def test_cumulative_messages_cached_and_correct(self):
        T = 6
        algo = ChargesInOutput([frozenset({0})] * T, every=2)
        res = MonitoringEngine(small_trace(T=T, n=4), algo, k=1).run()
        first = res.cumulative_messages
        assert first.tolist() == np.cumsum(res.ledger.per_step.tolist()).tolist()
        assert res.cumulative_messages is first  # cached object
