"""Unit tests for :mod:`repro.model.invariants` (the Section-2 semantics)."""

import numpy as np
import pytest

from repro.model.invariants import (
    eps_sets,
    exact_topk_set,
    filters_form_valid_set,
    kth_largest,
    output_valid,
    sigma,
    values_within_filters,
)


class TestKthLargest:
    def test_basic(self):
        v = np.array([5.0, 1.0, 9.0, 7.0])
        assert kth_largest(v, 1) == 9.0
        assert kth_largest(v, 2) == 7.0
        assert kth_largest(v, 4) == 1.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            kth_largest(np.array([1.0, 2.0]), 3)


class TestExactTopK:
    def test_basic(self):
        v = np.array([5.0, 1.0, 9.0, 7.0])
        assert exact_topk_set(v, 2) == {2, 3}

    def test_tie_break_lower_id_wins(self):
        v = np.array([5.0, 9.0, 9.0, 5.0])
        assert exact_topk_set(v, 1) == {1}
        assert exact_topk_set(v, 3) == {0, 1, 2}


class TestEpsSets:
    def test_definition(self):
        # k=2, vk=100, eps=0.2: E = (125, inf], A = [80, 125].
        v = np.array([130.0, 100.0, 124.0, 81.0, 50.0])
        s = eps_sets(v, 2, 0.2)
        assert s.vk == 124.0  # second largest
        assert s.hi == pytest.approx(155.0)
        assert s.lo == pytest.approx(99.2)
        assert s.clearly_larger == set()  # 130 < 155
        assert s.neighborhood == {1, 0, 2}

    def test_clearly_larger(self):
        v = np.array([1000.0, 100.0, 10.0])
        s = eps_sets(v, 2, 0.1)
        assert s.vk == 100.0
        assert s.clearly_larger == {0}

    def test_eps_zero_degenerates_to_exact(self):
        v = np.array([5.0, 9.0, 7.0])
        s = eps_sets(v, 2, 0.0)
        assert s.clearly_larger == {1}  # strictly above vk=7
        assert s.neighborhood == {2}  # exactly vk

    def test_sigma(self):
        v = np.array([100.0, 101.0, 99.0, 10.0])
        assert sigma(v, 2, 0.1) == 3
        assert sigma(v, 2, 0.001) == 1


class TestOutputValid:
    def test_valid_exact(self):
        v = np.array([5.0, 9.0, 7.0, 1.0])
        ok, why = output_valid(v, 2, 0.0, frozenset({1, 2}))
        assert ok, why

    def test_wrong_size(self):
        v = np.array([5.0, 9.0, 7.0])
        ok, why = output_valid(v, 2, 0.0, frozenset({1}))
        assert not ok and "|F|" in why

    def test_missing_clearly_larger(self):
        v = np.array([1000.0, 100.0, 99.0, 1.0])
        ok, why = output_valid(v, 2, 0.1, frozenset({1, 2}))
        assert not ok and "clearly larger" in why

    def test_stray_low_node(self):
        v = np.array([100.0, 99.0, 98.0, 1.0])
        ok, why = output_valid(v, 2, 0.05, frozenset({0, 3}))
        assert not ok and "outside" in why

    def test_neighborhood_swap_is_legal(self):
        """Inside the ε-band any k-completion is acceptable."""
        v = np.array([100.0, 99.0, 98.0, 1.0])
        for pick in ({0, 1}, {0, 2}, {1, 2}):
            ok, why = output_valid(v, 2, 0.05, frozenset(pick))
            assert ok, why

    def test_invalid_node_id(self):
        v = np.array([1.0, 2.0])
        ok, why = output_valid(v, 1, 0.0, frozenset({5}))
        assert not ok and "invalid node id" in why


class TestFilterSetValidity:
    def test_observation_2_2(self):
        lo = np.array([50.0, 0.0, 0.0])
        hi = np.array([np.inf, 55.0, 40.0])
        # min lower over F={0} is 50; max upper over rest is 55.
        assert filters_form_valid_set(lo, hi, frozenset({0}), eps=0.1)[0]  # 50 >= 49.5
        ok, why = filters_form_valid_set(lo, hi, frozenset({0}), eps=0.01)
        assert not ok and "overlap" in why

    def test_exact_needs_disjoint(self):
        lo = np.array([50.0, 0.0])
        hi = np.array([np.inf, 50.0])
        assert filters_form_valid_set(lo, hi, frozenset({0}), eps=0.0)[0]

    def test_degenerate_all_or_none(self):
        lo = np.array([0.0, 0.0])
        hi = np.array([1.0, 1.0])
        assert filters_form_valid_set(lo, hi, frozenset({0, 1}), eps=0.0)[0]
        assert filters_form_valid_set(lo, hi, frozenset(), eps=0.0)[0]


class TestValuesWithinFilters:
    def test_ok(self):
        ok, _ = values_within_filters(
            np.array([5.0, 6.0]), np.array([0.0, 0.0]), np.array([10.0, 10.0])
        )
        assert ok

    def test_breach_reported(self):
        ok, why = values_within_filters(
            np.array([5.0, 60.0]), np.array([0.0, 0.0]), np.array([10.0, 10.0])
        )
        assert not ok and "node 1" in why
