"""Unit tests for :mod:`repro.model.ledger`."""

import numpy as np
import pytest

from repro.model.ledger import CostLedger, StepSeries


class TestCharging:
    def test_unit_costs(self):
        led = CostLedger()
        led.charge_up(3)
        led.charge_down(2)
        led.charge_broadcast()
        assert led.node_to_server == 3
        assert led.server_to_node == 2
        assert led.broadcasts == 1
        assert led.messages == 6

    def test_rounds_are_not_messages(self):
        led = CostLedger()
        led.charge_rounds(5)
        assert led.rounds == 5
        assert led.messages == 0

    @pytest.mark.parametrize("method", ["charge_up", "charge_down", "charge_broadcast", "charge_rounds"])
    def test_negative_rejected(self, method):
        led = CostLedger()
        with pytest.raises(ValueError):
            getattr(led, method)(-1)


class TestSnapshots:
    def test_delta(self):
        led = CostLedger()
        led.charge_up(2)
        before = led.snapshot()
        led.charge_up(3)
        led.charge_broadcast()
        delta = led.snapshot() - before
        assert delta.node_to_server == 3
        assert delta.broadcasts == 1
        assert delta.messages == 4

    def test_mismatched_broadcast_cost_rejected(self):
        """Snapshots priced under different broadcast costs must not mix."""
        cheap = CostLedger(broadcast_cost=1)
        cheap.charge_broadcast(2)
        costly = CostLedger(broadcast_cost=8)
        costly.charge_broadcast(2)
        with pytest.raises(ValueError, match="broadcast"):
            costly.snapshot() - cheap.snapshot()

    def test_matching_broadcast_cost_prices_delta(self):
        led = CostLedger(broadcast_cost=8)
        before = led.snapshot()
        led.charge_broadcast(3)
        delta = led.snapshot() - before
        assert delta.broadcast_cost == 8
        assert delta.messages == 24


class TestPerStep:
    def test_series(self):
        led = CostLedger()
        led.begin_step()
        led.charge_up(4)
        led.end_step()
        led.begin_step()
        led.end_step()
        led.begin_step()
        led.charge_broadcast()
        led.end_step()
        assert led.per_step == [4, 0, 1]

    def test_max_rounds_per_step(self):
        led = CostLedger()
        led.begin_step()
        led.charge_rounds(7)
        led.end_step()
        led.begin_step()
        led.charge_rounds(3)
        led.end_step()
        assert led.max_rounds_per_step == 7

    def test_late_charges_fold_into_the_ended_step(self):
        """Charges between end_step() and the next begin_step() belong to
        the step they reacted to — they must not vanish from the series."""
        led = CostLedger()
        led.begin_step()
        led.charge_up(2)
        led.end_step()
        led.charge_down(3)  # e.g. an output() side effect
        led.begin_step()
        led.charge_up(1)
        led.end_step()
        assert led.per_step == [5, 1]
        assert led.unaccounted == 0

    def test_flush_late_charges_closes_the_final_step(self):
        led = CostLedger()
        led.begin_step()
        led.end_step()
        led.charge_broadcast(2)
        assert led.unaccounted == 2
        assert led.flush_late_charges() == 2
        assert led.per_step == [2]
        assert led.unaccounted == 0
        assert led.flush_late_charges() == 0  # idempotent

    def test_accounting_law_holds(self):
        led = CostLedger()
        for t in range(5):
            led.begin_step()
            led.charge_up(t)
            led.end_step()
            led.charge_down()  # a late charge every step
        led.flush_late_charges()
        assert sum(led.per_step) == led.messages


class TestStepSeries:
    """The per-step buffer must stay list-compatible while growing in
    amortized int64 chunks."""

    def test_growth_past_initial_capacity(self):
        series = StepSeries()
        count = StepSeries._INITIAL_CAPACITY * 4 + 3
        for i in range(count):
            series._append(i)
        assert len(series) == count
        assert series[0] == 0
        assert series[count - 1] == count - 1
        assert series.tolist() == list(range(count))

    def test_list_compatibility(self):
        led = CostLedger()
        for cost in (4, 0, 1):
            led.begin_step()
            led.charge_up(cost)
            led.end_step()
        series = led.per_step
        assert series == [4, 0, 1]
        assert not (series == [4, 0])
        assert len(series) == 3
        assert series[1] == 0
        assert series[-1] == 1
        assert sum(series[1:]) == 1
        assert list(series) == [4, 0, 1]
        assert isinstance(series[0], int)

    def test_asarray_is_zero_copy_int64(self):
        series = StepSeries()
        for i in range(10):
            series._append(i)
        arr = np.asarray(series)
        assert arr.dtype == np.int64
        assert arr.base is series._buf  # a view, not a copy
        assert np.cumsum(arr).tolist() == np.cumsum(list(range(10))).tolist()

    def test_eq_against_arrays_and_series(self):
        a, b = StepSeries(), StepSeries()
        for value in (3, 1):
            a._append(value)
            b._append(value)
        assert a == b
        assert a == np.array([3, 1])
        b._append(0)
        assert not (a == b)

    def test_total(self):
        series = StepSeries()
        for value in (5, 7, 11):
            series._append(value)
        assert series.total == 23

    def test_out_of_range_index(self):
        series = StepSeries()
        series._append(1)
        with pytest.raises(IndexError):
            series[5]

    def test_fold_into_empty_rejected(self):
        with pytest.raises(IndexError):
            StepSeries()._add_to_last(1)


class TestScopes:
    def test_attribution(self):
        led = CostLedger()
        with led.scope("alpha"):
            led.charge_up(2)
            with led.scope("beta"):
                led.charge_broadcast()
        led.charge_down()  # unscoped
        by = led.by_scope()
        assert by["alpha"] == 3  # includes the nested beta charge
        assert by["beta"] == 1
        assert led.messages == 4

    def test_hierarchical_attribution(self):
        led = CostLedger()
        with led.scope("outer"):
            with led.scope("inner"):
                led.charge_up(5)
        assert led.by_scope() == {"inner": 5, "outer": 5}

    def test_same_name_nesting_counts_once(self):
        led = CostLedger()
        with led.scope("a"):
            with led.scope("a"):
                led.charge_up(3)
        assert led.by_scope() == {"a": 3}
