"""Unit tests for :mod:`repro.model.ledger`."""

import pytest

from repro.model.ledger import CostLedger


class TestCharging:
    def test_unit_costs(self):
        led = CostLedger()
        led.charge_up(3)
        led.charge_down(2)
        led.charge_broadcast()
        assert led.node_to_server == 3
        assert led.server_to_node == 2
        assert led.broadcasts == 1
        assert led.messages == 6

    def test_rounds_are_not_messages(self):
        led = CostLedger()
        led.charge_rounds(5)
        assert led.rounds == 5
        assert led.messages == 0

    @pytest.mark.parametrize("method", ["charge_up", "charge_down", "charge_broadcast", "charge_rounds"])
    def test_negative_rejected(self, method):
        led = CostLedger()
        with pytest.raises(ValueError):
            getattr(led, method)(-1)


class TestSnapshots:
    def test_delta(self):
        led = CostLedger()
        led.charge_up(2)
        before = led.snapshot()
        led.charge_up(3)
        led.charge_broadcast()
        delta = led.snapshot() - before
        assert delta.node_to_server == 3
        assert delta.broadcasts == 1
        assert delta.messages == 4

    def test_mismatched_broadcast_cost_rejected(self):
        """Snapshots priced under different broadcast costs must not mix."""
        cheap = CostLedger(broadcast_cost=1)
        cheap.charge_broadcast(2)
        costly = CostLedger(broadcast_cost=8)
        costly.charge_broadcast(2)
        with pytest.raises(ValueError, match="broadcast"):
            costly.snapshot() - cheap.snapshot()

    def test_matching_broadcast_cost_prices_delta(self):
        led = CostLedger(broadcast_cost=8)
        before = led.snapshot()
        led.charge_broadcast(3)
        delta = led.snapshot() - before
        assert delta.broadcast_cost == 8
        assert delta.messages == 24


class TestPerStep:
    def test_series(self):
        led = CostLedger()
        led.begin_step()
        led.charge_up(4)
        led.end_step()
        led.begin_step()
        led.end_step()
        led.begin_step()
        led.charge_broadcast()
        led.end_step()
        assert led.per_step == [4, 0, 1]

    def test_max_rounds_per_step(self):
        led = CostLedger()
        led.begin_step()
        led.charge_rounds(7)
        led.end_step()
        led.begin_step()
        led.charge_rounds(3)
        led.end_step()
        assert led.max_rounds_per_step == 7


class TestScopes:
    def test_attribution(self):
        led = CostLedger()
        with led.scope("alpha"):
            led.charge_up(2)
            with led.scope("beta"):
                led.charge_broadcast()
        led.charge_down()  # unscoped
        by = led.by_scope()
        assert by["alpha"] == 3  # includes the nested beta charge
        assert by["beta"] == 1
        assert led.messages == 4

    def test_hierarchical_attribution(self):
        led = CostLedger()
        with led.scope("outer"):
            with led.scope("inner"):
                led.charge_up(5)
        assert led.by_scope() == {"inner": 5, "outer": 5}

    def test_same_name_nesting_counts_once(self):
        led = CostLedger()
        with led.scope("a"):
            with led.scope("a"):
                led.charge_up(3)
        assert led.by_scope() == {"a": 3}
