"""Unit tests for :mod:`repro.model.node`."""

import numpy as np
import pytest

from repro.model.node import (
    NodeArray,
    VIOLATION_ABOVE,
    VIOLATION_BELOW,
    VIOLATION_NONE,
)
from repro.util.intervals import Interval


@pytest.fixture
def nodes() -> NodeArray:
    arr = NodeArray(4)
    arr.deliver(np.array([10.0, 20.0, 30.0, 40.0]))
    return arr


class TestConstruction:
    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            NodeArray(1)

    def test_initial_filters_are_everything(self, nodes):
        assert not nodes.violating_mask().any()


class TestDeliver:
    def test_shape_checked(self, nodes):
        with pytest.raises(ValueError, match="shape"):
            nodes.deliver(np.zeros(3))

    def test_finiteness_checked(self, nodes):
        with pytest.raises(ValueError, match="finite"):
            nodes.deliver(np.array([1.0, np.inf, 3.0, 4.0]))


class TestFilters:
    def test_set_get_roundtrip(self, nodes):
        nodes.set_filter(1, Interval(5.0, 25.0))
        assert nodes.get_filter(1) == Interval(5.0, 25.0)

    def test_bulk(self, nodes):
        nodes.set_filters_bulk(np.array([0, 2]), 0.0, 15.0)
        assert nodes.get_filter(0) == Interval(0.0, 15.0)
        assert nodes.get_filter(2) == Interval(0.0, 15.0)
        assert nodes.get_filter(1).hi == np.inf


class TestViolations:
    def test_kinds(self, nodes):
        # node 0 (v=10): filter [15, inf] -> violates from above
        # node 1 (v=20): filter [0, 15]   -> violates from below
        # node 2 (v=30): filter [0, 100]  -> fine
        nodes.set_filter(0, Interval.at_least(15.0))
        nodes.set_filter(1, Interval(0.0, 15.0))
        nodes.set_filter(2, Interval(0.0, 100.0))
        kind = nodes.violation_kind()
        assert kind[0] == VIOLATION_ABOVE
        assert kind[1] == VIOLATION_BELOW
        assert kind[2] == VIOLATION_NONE

    def test_paper_naming(self, nodes):
        """'Violates from below' = value LARGER than the filter's top."""
        nodes.set_filter(3, Interval(0.0, 35.0))  # v=40 > 35
        assert nodes.violation_kind()[3] == VIOLATION_BELOW

    def test_boundary_values_are_inside(self, nodes):
        nodes.set_filter(0, Interval(10.0, 10.0))
        assert nodes.violation_kind()[0] == VIOLATION_NONE


class TestMasks:
    def test_mask_above_strictness(self, nodes):
        assert nodes.mask_above(20.0).tolist() == [False, False, True, True]
        assert nodes.mask_above(20.0, strict=False).tolist() == [False, True, True, True]

    def test_mask_below_strictness(self, nodes):
        assert nodes.mask_below(20.0).tolist() == [True, False, False, False]
        assert nodes.mask_below(20.0, strict=False).tolist() == [True, True, False, False]
