"""Unit tests for :mod:`repro.model.protocol`."""

import numpy as np
import pytest

from repro.model.channel import Channel
from repro.model.node import NodeArray
from repro.model.protocol import ProtocolError, drain_violations
from repro.util.intervals import Interval


def make_channel(values):
    nodes = NodeArray(len(values))
    nodes.deliver(np.asarray(values, dtype=float))
    return Channel(nodes, rng=0), nodes


class TestDrainViolations:
    def test_silent_system_returns_zero(self):
        ch, _ = make_channel([1.0, 2.0])
        assert drain_violations(ch, lambda v: None) == 0

    def test_processes_until_silent(self):
        ch, nodes = make_channel([10.0, 20.0, 30.0])
        nodes.set_filters_bulk(np.arange(3), 0.0, 15.0)  # nodes 1, 2 violate

        def widen(violation):
            ch.unicast_filter(violation.node, Interval(0.0, 100.0))

        handled = drain_violations(ch, widen)
        assert handled == 2
        assert not nodes.violating_mask().any()

    def test_stale_reports_ignored(self):
        """A handler that fixes everyone at once leaves nothing to re-handle."""
        ch, nodes = make_channel([10.0, 20.0, 30.0])
        nodes.set_filters_bulk(np.arange(3), 0.0, 5.0)  # all violate

        def fix_all(violation):
            ch.broadcast_filters([(np.arange(3), Interval(0.0, 100.0))])

        assert drain_violations(ch, fix_all) == 1

    def test_non_progress_raises(self):
        ch, nodes = make_channel([10.0, 20.0])
        nodes.set_filters_bulk(np.arange(2), 0.0, 5.0)
        with pytest.raises(ProtocolError, match="progress"):
            drain_violations(ch, lambda v: None, max_iterations=25)
