"""Tests for :mod:`repro.offline.feasibility`, incl. brute-force cross-check."""

from itertools import combinations

import numpy as np
import pytest

from repro.offline.feasibility import window_feasible, witness_set


def brute_force_feasible(a, b, k, eps):
    """Literal ∃S check over all k-subsets (the definition)."""
    n = len(a)
    for subset in combinations(range(n), k):
        s = set(subset)
        min_s = min(a[i] for i in s)
        max_rest = max(b[j] for j in range(n) if j not in s)
        if min_s >= (1 - eps) * max_rest:
            return True
    return False


class TestAgainstBruteForce:
    @pytest.mark.parametrize("eps", [0.0, 0.1, 0.3])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_random_instances(self, k, eps):
        rng = np.random.default_rng(42 + k)
        for _ in range(200):
            n = int(rng.integers(k + 1, 7))
            b = rng.integers(1, 50, size=n).astype(float)
            a = b - rng.integers(0, 20, size=n)
            a = np.maximum(a, 0.0)
            expected = brute_force_feasible(a, b, k, eps)
            assert window_feasible(a, b, k, eps) == expected, (a, b, k, eps)

    @pytest.mark.parametrize("eps", [0.0, 0.2])
    def test_witness_is_valid(self, eps):
        rng = np.random.default_rng(7)
        for _ in range(200):
            n = int(rng.integers(3, 8))
            k = int(rng.integers(1, n))
            b = rng.integers(1, 40, size=n).astype(float)
            a = np.maximum(b - rng.integers(0, 15, size=n), 0.0)
            s = witness_set(a, b, k, eps)
            if s is None:
                assert not brute_force_feasible(a, b, k, eps)
            else:
                assert len(s) == k
                rest = [j for j in range(n) if j not in set(s.tolist())]
                assert a[s].min() >= (1 - eps) * b[rest].max() - 1e-9


class TestKnownCases:
    def test_single_step_always_feasible(self):
        v = np.array([10.0, 7.0, 3.0])
        assert window_feasible(v, v, 1, 0.0)
        assert window_feasible(v, v, 2, 0.0)

    def test_crossing_window_infeasible_exactly(self):
        # Nodes swap: a = elementwise min over time, b = max.
        a = np.array([5.0, 5.0])  # both dipped to 5
        b = np.array([9.0, 9.0])  # both peaked at 9
        assert not window_feasible(a, b, 1, 0.0)
        # With enough slack the overlap is tolerable: 5 >= (1-e)*9.
        assert window_feasible(a, b, 1, 0.5)

    def test_eps_monotonicity(self):
        a = np.array([80.0, 70.0, 10.0])
        b = np.array([100.0, 90.0, 20.0])
        feas = [window_feasible(a, b, 1, e) for e in (0.0, 0.1, 0.2, 0.3)]
        # Once feasible, stays feasible as eps grows.
        assert feas == sorted(feas)

    def test_mandatory_member_blocks(self):
        """A high-b node with a low a poisons every candidate S."""
        a = np.array([1.0, 50.0, 40.0])
        b = np.array([100.0, 55.0, 45.0])  # node 0 must be in S (b=100)
        assert not window_feasible(a, b, 1, 0.1)

    def test_example_from_design_doc(self):
        """Largest-a selection is NOT optimal; θ-scan finds the right S."""
        a = np.array([5.0, 6.0])
        b = np.array([100.0, 6.0])
        # S={1} (larger a) fails: 6 < (1-.5)*100; S={0} works: 5 >= .5*6.
        assert window_feasible(a, b, 1, 0.5)
        s = witness_set(a, b, 1, 0.5)
        assert s.tolist() == [0]


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            window_feasible(np.ones(3), np.ones(4), 1, 0.0)

    def test_k_range(self):
        with pytest.raises(ValueError):
            window_feasible(np.ones(3), np.ones(3), 3, 0.0)

    def test_a_above_b_rejected(self):
        with pytest.raises(ValueError, match="swapped"):
            window_feasible(np.array([5.0, 1.0]), np.array([4.0, 2.0]), 1, 0.0)
