"""Tests for :mod:`repro.offline.opt`."""

import numpy as np

from repro.offline.opt import offline_opt
from repro.streams.base import Trace


def swap_trace(swaps: int) -> Trace:
    """A trace with `swaps` clean rank crossings."""
    rows = []
    for block in range(swaps + 1):
        row = [9.0, 5.0] if block % 2 == 0 else [5.0, 9.0]
        rows.extend([row] * 3)
    return Trace(np.array(rows))


class TestOfflineResult:
    def test_phase_accounting(self):
        res = offline_opt(swap_trace(4), 1, 0.0)
        assert res.phases == 5
        assert res.message_lb == 4
        assert res.ratio_denominator == 4
        assert res.explicit_cost == (1 + 1) * 5
        assert res.phase_starts[0] == 0

    def test_quiet_trace(self):
        res = offline_opt(Trace(np.tile([7.0, 3.0], (10, 1))), 1, 0.0)
        assert res.phases == 1
        assert res.message_lb == 0
        assert res.ratio_denominator == 1  # guarded denominator

    def test_eps_reduces_cost(self):
        rows = []
        for t in range(20):
            rows.append([100.0, 97.0] if t % 2 == 0 else [97.0, 100.0])
        trace = Trace(np.array(rows))
        exact = offline_opt(trace, 1, 0.0)
        approx = offline_opt(trace, 1, 0.1)
        assert approx.phases < exact.phases
        assert approx.phases == 1
