"""Tests for :mod:`repro.offline.phases`."""

import numpy as np
import pytest

from repro.offline.feasibility import window_feasible
from repro.offline.phases import greedy_phases
from repro.streams.base import Trace
from repro.streams.synthetic import random_walk
from repro.streams.transforms import make_distinct


class TestKnownDecompositions:
    def test_frozen_trace_is_one_phase(self):
        data = np.tile(np.array([9.0, 5.0, 1.0]), (30, 1))
        assert greedy_phases(Trace(data), 1, 0.0) == [0]

    def test_single_swap_is_two_phases(self):
        data = np.array(
            [
                [9.0, 5.0, 1.0],
                [9.0, 5.0, 1.0],
                [4.0, 5.0, 1.0],  # rank swap
                [4.0, 5.0, 1.0],
            ]
        )
        starts = greedy_phases(Trace(data), 1, 0.0)
        assert starts == [0, 2]

    def test_alternating_swaps(self):
        rows = []
        for t in range(10):
            rows.append([9.0, 5.0] if t % 2 == 0 else [5.0, 9.0])
        starts = greedy_phases(Trace(np.array(rows)), 1, 0.0)
        assert len(starts) == 10  # every step crosses

    def test_eps_absorbs_small_swaps(self):
        rows = []
        for t in range(10):
            rows.append([100.0, 98.0] if t % 2 == 0 else [98.0, 100.0])
        tr = Trace(np.array(rows))
        assert len(greedy_phases(tr, 1, 0.0)) == 10
        assert len(greedy_phases(tr, 1, 0.1)) == 1  # 98 >= 0.9*100


class TestStructuralProperties:
    def test_each_window_feasible_and_maximal(self):
        trace = make_distinct(random_walk(120, 6, high=512, step=32, rng=0))
        k, eps = 2, 0.05
        starts = greedy_phases(trace, k, eps)
        bounds = starts + [trace.num_steps]
        for w, start in enumerate(starts):
            stop = bounds[w + 1]
            window = trace.data[start:stop]
            a, b = window.min(axis=0), window.max(axis=0)
            assert window_feasible(a, b, k, eps)
            if stop < trace.num_steps:  # maximality
                ext = trace.data[start : stop + 1]
                assert not window_feasible(ext.min(axis=0), ext.max(axis=0), k, eps)

    def test_eps_monotone_phase_count(self):
        trace = make_distinct(random_walk(150, 8, high=1024, step=64, rng=1))
        counts = [len(greedy_phases(trace, 2, e)) for e in (0.0, 0.05, 0.1, 0.2, 0.4)]
        assert counts == sorted(counts, reverse=True)

    def test_k_validated(self):
        trace = Trace(np.ones((3, 2)))
        with pytest.raises(ValueError):
            greedy_phases(trace, 2, 0.0)
