"""Tests for the executable offline schedule (Prop. 2.4 realized)."""

import numpy as np
import pytest

from repro.model.engine import MonitoringEngine
from repro.offline.opt import offline_opt
from repro.offline.schedule import OfflinePlayer, build_schedule
from repro.streams.base import Trace
from repro.streams.synthetic import random_walk
from repro.streams.transforms import make_distinct
from repro.streams.workloads import cluster_load, sensor_field


class TestBuildSchedule:
    def test_windows_tile_the_trace(self):
        trace = make_distinct(random_walk(120, 8, high=2048, step=64, rng=0))
        schedule = build_schedule(trace, 2, 0.1)
        assert schedule.windows[0].start == 0
        assert schedule.windows[-1].stop == trace.num_steps
        for w1, w2 in zip(schedule.windows, schedule.windows[1:]):
            assert w1.stop == w2.start

    def test_window_count_matches_opt(self):
        trace = make_distinct(random_walk(150, 8, high=2048, step=64, rng=1))
        schedule = build_schedule(trace, 2, 0.05)
        opt = offline_opt(trace, 2, 0.05)
        assert schedule.reconfigurations == opt.phases

    def test_filters_have_valid_overlap(self):
        trace = sensor_field(100, 16, 3, eps=0.2, band=8, rng=2)
        schedule = build_schedule(trace, 3, 0.2)
        for window in schedule.windows:
            assert window.lower >= (1 - 0.2) * window.upper - 1e-9
            assert len(window.output) == 3

    def test_quiet_trace_single_window(self):
        data = np.tile([9.0, 5.0, 1.0], (20, 1))
        schedule = build_schedule(Trace(data), 1, 0.0)
        assert schedule.reconfigurations == 1
        assert schedule.windows[0].output == (0,)


class TestOfflinePlayer:
    @pytest.mark.parametrize("eps", [0.0, 0.1])
    def test_replay_is_lawful_and_silent(self, eps):
        """The replayed plan passes the engine's three laws every step."""
        trace = make_distinct(random_walk(150, 10, high=4096, step=128, rng=3))
        schedule = build_schedule(trace, 3, eps)
        player = OfflinePlayer(schedule)
        result = MonitoringEngine(trace, player, k=3, eps=eps, check=True).run()
        # Cost is exactly (k+1) per window — nothing else ever happens.
        assert result.messages == (3 + 1) * schedule.reconfigurations

    def test_player_cost_matches_explicit_formula(self):
        trace = cluster_load(200, 16, rng=4)
        schedule = build_schedule(trace, 4, 0.1)
        player = OfflinePlayer(schedule)
        result = MonitoringEngine(trace, player, k=4, eps=0.1).run()
        assert result.messages == offline_opt(trace, 4, 0.1).explicit_cost

    def test_player_beats_every_online_algorithm(self):
        from repro.core.approx_monitor import ApproxTopKMonitor

        trace = cluster_load(300, 24, rng=5)
        schedule = build_schedule(trace, 4, 0.1)
        offline_cost = MonitoringEngine(trace, OfflinePlayer(schedule), k=4, eps=0.1).run().messages
        online_cost = MonitoringEngine(
            trace, ApproxTopKMonitor(4, 0.1), k=4, eps=0.1, seed=0
        ).run().messages
        assert offline_cost < online_cost
