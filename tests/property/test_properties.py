"""Property-based tests (hypothesis) for core invariants.

Strategy design note: protocol runs are comparatively slow, so stream
sizes are kept small; the *space* of shapes (values, k, ε) is what
hypothesis explores.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.approx_monitor import ApproxTopKMonitor
from repro.core.exact_monitor import ExactTopKMonitor
from repro.model.engine import MonitoringEngine
from repro.model.invariants import eps_sets, output_valid, sigma
from repro.offline.feasibility import window_feasible, witness_set
from repro.offline.phases import greedy_phases
from repro.streams.base import Trace
from repro.streams.transforms import make_distinct
from repro.util.intervals import Interval

# ----------------------------------------------------------------------- #
# Strategies
# ----------------------------------------------------------------------- #

small_trace = st.integers(3, 7).flatmap(
    lambda n: arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(2, 12), st.just(n)),
        elements=st.integers(0, 400).map(float),
    )
)

values_array = st.integers(3, 9).flatmap(
    lambda n: arrays(np.float64, n, elements=st.integers(0, 1000).map(float))
)


# ----------------------------------------------------------------------- #
# Section-2 semantics
# ----------------------------------------------------------------------- #


@given(values=values_array, k=st.integers(1, 3), eps=st.floats(0.01, 0.5))
def test_eps_sets_are_consistent(values, k, eps):
    k = min(k, len(values) - 1)
    s = eps_sets(values, k, eps)
    # E and K are disjoint; |E| < k always (at most k-1 strictly above vk).
    assert not (s.clearly_larger & s.neighborhood)
    assert len(s.clearly_larger) < k + 1
    assert s.lo <= s.vk <= s.hi
    assert sigma(values, k, eps) == len(s.neighborhood)


@given(values=values_array, k=st.integers(1, 3), eps=st.floats(0.01, 0.5))
def test_some_valid_output_always_exists(values, k, eps):
    """E plus a completion from K is always a valid output."""
    k = min(k, len(values) - 1)
    s = eps_sets(values, k, eps)
    completion = sorted(s.neighborhood - s.clearly_larger)
    out = set(s.clearly_larger) | set(completion[: k - len(s.clearly_larger)])
    ok, why = output_valid(values, k, eps, frozenset(out))
    assert ok, why


# ----------------------------------------------------------------------- #
# Feasibility / greedy phases
# ----------------------------------------------------------------------- #


@given(trace=small_trace, k=st.integers(1, 3), eps=st.floats(0.0, 0.5))
def test_greedy_windows_are_feasible(trace, k, eps):
    tr = Trace(trace)
    k = min(k, tr.n - 1)
    starts = greedy_phases(tr, k, eps)
    bounds = starts + [tr.num_steps]
    assert starts[0] == 0
    assert all(b > a for a, b in zip(bounds, bounds[1:]))
    for a, b in zip(starts, bounds[1:]):
        window = tr.data[a:b]
        assert window_feasible(window.min(axis=0), window.max(axis=0), k, eps)


@given(values=values_array, k=st.integers(1, 3), eps=st.floats(0.0, 0.5))
def test_witness_matches_feasibility(values, k, eps):
    k = min(k, len(values) - 1)
    a = values
    b = values + 10.0
    assert window_feasible(a, b, k, eps) == (witness_set(a, b, k, eps) is not None)


# ----------------------------------------------------------------------- #
# Intervals
# ----------------------------------------------------------------------- #


@given(lo=st.floats(-1e6, 1e6), width=st.floats(0, 1e6))
def test_halves_partition_width(lo, width):
    itv = Interval(lo, lo + width)
    lower, upper = itv.lower_half(), itv.upper_half()
    if itv.width == 0:  # includes float-absorbed tiny widths
        assert lower.is_empty and upper.is_empty
    else:
        assert lower.width <= itv.width / 2 + 1e-6
        assert upper.width <= itv.width / 2 + 1e-6
        assert lower.hi == upper.lo  # meet at the midpoint


@given(
    a=st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
    b=st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
)
def test_intersection_is_largest_common_subset(a, b):
    ia = Interval(min(a), max(a))
    ib = Interval(min(b), max(b))
    inter = ia.intersect(ib)
    if not inter.is_empty:
        assert ia.contains_interval(inter) and ib.contains_interval(inter)


# ----------------------------------------------------------------------- #
# Whole-protocol law checking on random small traces (the big one)
# ----------------------------------------------------------------------- #


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(trace=small_trace, k=st.integers(1, 3), seed=st.integers(0, 100))
def test_exact_monitor_laws_on_random_traces(trace, k, seed):
    tr = make_distinct(Trace(trace))
    k = min(k, tr.n - 1)
    algo = ExactTopKMonitor(k)
    MonitoringEngine(tr, algo, k=k, eps=0.0, seed=seed, check=True).run()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    trace=small_trace,
    k=st.integers(1, 3),
    eps=st.sampled_from([0.05, 0.15, 0.35]),
    seed=st.integers(0, 100),
)
def test_approx_monitor_laws_on_random_traces(trace, k, eps, seed):
    tr = Trace(trace + 1.0)  # strictly positive values
    k = min(k, tr.n - 1)
    algo = ApproxTopKMonitor(k, eps)
    MonitoringEngine(tr, algo, k=k, eps=eps, seed=seed, check=True).run()
