"""Unit tests for :mod:`repro.runner.cache`."""

import json

from repro.runner import ResultCache, grid_fingerprint, sweep
from repro.runner.pool import RunnerConfig, run_grid


def _cell_v1(params, seed):
    return {"y": params["x"] + 1}


def _cell_v2(params, seed):
    return {"y": params["x"] + 2}


class TestFingerprint:
    def test_fingerprint_changes_with_cell_function_source(self):
        a = grid_fingerprint(sweep("TC", _cell_v1, {"x": [1]}, seed=0))
        b = grid_fingerprint(sweep("TC", _cell_v2, {"x": [1]}, seed=0))
        assert a != b

    def test_fingerprint_changes_with_root_seed(self):
        a = grid_fingerprint(sweep("TC", _cell_v1, {"x": [1]}, seed=0))
        b = grid_fingerprint(sweep("TC", _cell_v1, {"x": [1]}, seed=1))
        assert a != b


class TestStore:
    def test_roundtrip(self, tmp_path):
        spec = sweep("TC", _cell_v1, {"x": [3]}, seed=0)
        cache = ResultCache(tmp_path)
        fp = grid_fingerprint(spec)
        cell = spec.cells[0]
        assert cache.lookup(spec, fp, cell) is None
        cache.store(spec, fp, cell, {"y": 4})
        assert cache.lookup(spec, fp, cell) == {"y": 4}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = sweep("TC", _cell_v1, {"x": [3]}, seed=0)
        cache = ResultCache(tmp_path)
        fp = grid_fingerprint(spec)
        cell = spec.cells[0]
        cache.store(spec, fp, cell, {"y": 4})
        for entry in (tmp_path / "TC").iterdir():
            entry.write_text("{not json")
        assert cache.lookup(spec, fp, cell) is None

    def test_edited_cell_fn_recomputes(self, tmp_path):
        config = RunnerConfig(cache=True, cache_dir=tmp_path)
        assert run_grid(sweep("TC", _cell_v1, {"x": [1]}, seed=0), config) == [{"y": 2}]
        # Same exp id + params + seed, different function body: must miss.
        assert run_grid(sweep("TC", _cell_v2, {"x": [1]}, seed=0), config) == [{"y": 3}]

    def test_entries_are_inspectable_json(self, tmp_path):
        config = RunnerConfig(cache=True, cache_dir=tmp_path)
        run_grid(sweep("TC", _cell_v1, {"x": [9]}, seed=5), config)
        entries = list((tmp_path / "TC").iterdir())
        assert len(entries) == 1
        entry = json.loads(entries[0].read_text())
        assert entry["params"] == {"x": 9}
        assert entry["result"] == {"y": 10}
