"""Unit tests for :mod:`repro.runner.grid`."""

import pytest

from repro.runner import derive_seed, sweep


def _cell(params, seed):
    return {"val": params["a"] * 10 + params.get("b", 0), "seed": seed}


class TestSweep:
    def test_axes_cartesian_product_in_axis_order(self):
        spec = sweep("TX", _cell, {"a": [1, 2], "b": [3, 4]}, seed=0)
        assert [c.as_dict() for c in spec.cells] == [
            {"a": 1, "b": 3}, {"a": 1, "b": 4}, {"a": 2, "b": 3}, {"a": 2, "b": 4},
        ]
        assert [c.index for c in spec.cells] == [0, 1, 2, 3]

    def test_explicit_cells(self):
        cells = [{"a": 1}, {"a": 5, "b": 7}]
        spec = sweep("TX", _cell, cells=cells, seed=3)
        assert [c.as_dict() for c in spec.cells] == cells

    def test_axes_xor_cells_required(self):
        with pytest.raises(TypeError, match="exactly one"):
            sweep("TX", _cell, seed=0)
        with pytest.raises(TypeError, match="exactly one"):
            sweep("TX", _cell, {"a": [1]}, cells=[{"a": 1}], seed=0)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="no cells"):
            sweep("TX", _cell, {"a": []}, seed=0)

    def test_non_scalar_params_rejected(self):
        with pytest.raises(TypeError, match="non-JSON-scalar"):
            sweep("TX", _cell, cells=[{"a": object()}], seed=0)


class TestSeeds:
    def test_seed_is_content_keyed_not_position_keyed(self):
        small = sweep("TX", _cell, {"a": [2]}, seed=0)
        big = sweep("TX", _cell, {"a": [1, 2, 3]}, seed=0)
        by_a = {c.as_dict()["a"]: c.seed for c in big.cells}
        assert small.cells[0].seed == by_a[2]

    def test_seed_depends_on_exp_root_seed_and_params(self):
        base = derive_seed(0, "TX", {"a": 1})
        assert derive_seed(0, "TX", {"a": 1}) == base
        assert derive_seed(1, "TX", {"a": 1}) != base
        assert derive_seed(0, "TY", {"a": 1}) != base
        assert derive_seed(0, "TX", {"a": 2}) != base

    def test_distinct_cells_get_distinct_seeds(self):
        spec = sweep("TX", _cell, {"a": list(range(50))}, seed=0)
        assert len({c.seed for c in spec.cells}) == 50
