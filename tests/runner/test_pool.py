"""The runner's determinism law: scheduling never changes results.

Cell functions here write a sentinel file per invocation, which is how
the warm-cache test proves *zero* cell invocations (it works for pool
workers too, unlike an in-process counter).
"""

import os
import uuid

import pytest

from repro.runner import RunnerConfig, run_grid, sweep


def _marking_cell(params, seed):
    mark_dir = params["mark_dir"]
    with open(os.path.join(mark_dir, uuid.uuid4().hex), "w") as fh:
        fh.write(str(params["x"]))
    return {"y": params["x"] * params["x"], "seed": seed}


def _spec(mark_dir, seed=7):
    return sweep(
        "TPOOL", _marking_cell, {"x": [1, 2, 3, 4, 5], "mark_dir": [str(mark_dir)]}, seed=seed
    )


@pytest.fixture
def mark_dir(tmp_path):
    d = tmp_path / "marks"
    d.mkdir()
    return d


def _invocations(mark_dir) -> int:
    return len(list(mark_dir.iterdir()))


class TestDeterminism:
    def test_serial_matches_parallel(self, mark_dir):
        serial = run_grid(_spec(mark_dir), RunnerConfig(jobs=1))
        parallel = run_grid(_spec(mark_dir), RunnerConfig(jobs=4))
        assert serial == parallel
        assert [r["y"] for r in serial] == [1, 4, 9, 16, 25]

    def test_results_follow_cell_order_not_completion_order(self, mark_dir):
        results = run_grid(_spec(mark_dir), RunnerConfig(jobs=4))
        assert [r["y"] for r in results] == [1, 4, 9, 16, 25]


class TestCacheBehaviour:
    def test_warm_cache_runs_zero_cells(self, mark_dir, tmp_path):
        config = RunnerConfig(jobs=1, cache=True, cache_dir=tmp_path / "cache")
        cold = run_grid(_spec(mark_dir), config)
        assert _invocations(mark_dir) == 5
        warm = run_grid(_spec(mark_dir), config)
        assert _invocations(mark_dir) == 5, "warm cache must not invoke any cell"
        assert warm == cold

    def test_warm_cache_matches_across_jobs(self, mark_dir, tmp_path):
        config1 = RunnerConfig(jobs=4, cache=True, cache_dir=tmp_path / "cache")
        cold = run_grid(_spec(mark_dir), config1)
        warm = run_grid(_spec(mark_dir), RunnerConfig(jobs=1, cache=True, cache_dir=tmp_path / "cache"))
        assert warm == cold

    def test_partial_cache_fills_only_missing_cells(self, mark_dir, tmp_path):
        config = RunnerConfig(jobs=1, cache=True, cache_dir=tmp_path / "cache")
        run_grid(_spec(mark_dir), config)
        bigger = sweep(
            "TPOOL", _marking_cell,
            {"x": [1, 2, 3, 4, 5, 6], "mark_dir": [str(mark_dir)]}, seed=7,
        )
        stats = {}
        results = run_grid(bigger, config, stats=stats)
        assert stats == {"computed": 1, "cached": 5}
        assert [r["y"] for r in results] == [1, 4, 9, 16, 25, 36]

    def test_different_seed_misses_cache(self, mark_dir, tmp_path):
        config = RunnerConfig(jobs=1, cache=True, cache_dir=tmp_path / "cache")
        run_grid(_spec(mark_dir, seed=7), config)
        stats = {}
        run_grid(_spec(mark_dir, seed=8), config, stats=stats)
        assert stats["computed"] == 5


class TestValidation:
    def test_non_dict_result_rejected(self):
        spec = sweep("TBAD", _returns_list, {"x": [1]}, seed=0)
        with pytest.raises(TypeError, match="must return a dict"):
            run_grid(spec)

    def test_non_json_result_rejected(self):
        spec = sweep("TBAD", _returns_object, {"x": [1]}, seed=0)
        with pytest.raises(TypeError, match="JSON-serializable"):
            run_grid(spec)

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            RunnerConfig(jobs=0)


def _returns_list(params, seed):
    return [1, 2]


def _returns_object(params, seed):
    return {"x": object()}
