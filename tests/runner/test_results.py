"""Unit tests for :mod:`repro.runner.results`."""

from repro.runner import zip_params


class TestZipParams:
    def test_merges_params_with_results_in_order(self):
        merged = zip_params([{"x": 1}, {"x": 2}], [{"y": 10}, {"y": 20}])
        assert merged == [{"x": 1, "y": 10}, {"x": 2, "y": 20}]

    def test_result_wins_on_collision(self):
        merged = zip_params([{"x": 1, "y": 0}], [{"y": 5}])
        assert merged == [{"x": 1, "y": 5}]

    def test_inputs_are_not_mutated(self):
        cell, result = {"x": 1}, {"y": 2}
        merged = zip_params([cell], [result])
        merged[0]["x"] = 99
        assert cell == {"x": 1} and result == {"y": 2}
