"""Harness lifecycle for the stateful fuzz tier.

Building a serving topology is expensive — a 4-shard fleet spawns four
worker processes — so one :class:`TopologyHarness` per wire pin is
cached for the whole test session and every hypothesis example calls
:meth:`~repro.service.fuzzharness.TopologyHarness.reset` instead of
rebuilding it.  A harness that witnessed a failure marks itself dirty
(server state can no longer be assumed in lockstep with the oracle),
so :func:`shared_harness` tears it down and builds a fresh one; during
shrinking that means one rebuild per failing attempt, which is the
price of sound replays.

The wire pin follows the repo-wide ``REPRO_WIRE`` convention used by
the rest of tests/service: ``v1`` pins every server to JSON lines
(upgrades are refused), anything else lets connections negotiate v2
binary frames mid-sequence.
"""

import os

import pytest

from repro.service.fuzzharness import TopologyHarness

_HARNESSES: dict[str, TopologyHarness] = {}


def wire_pin() -> str:
    """Map ``REPRO_WIRE`` onto the harness pin (``v1`` or ``auto``)."""
    return "v1" if os.environ.get("REPRO_WIRE") == "v1" else "auto"


def shared_harness() -> TopologyHarness:
    """The session-cached harness for the active pin (rebuilt if dirty)."""
    pin = wire_pin()
    harness = _HARNESSES.get(pin)
    if harness is not None and harness.dirty:
        harness.teardown()
        harness = None
    if harness is None:
        harness = TopologyHarness(pin)
        _HARNESSES[pin] = harness
    return harness


@pytest.fixture(scope="session", autouse=True)
def _teardown_shared_harnesses():
    yield
    while _HARNESSES:
        _, harness = _HARNESSES.popitem()
        harness.teardown()
