"""Stateful protocol fuzzing: every op sequence, every topology, one law.

:class:`ProtocolMachine` walks the full client op vocabulary —
create (valid and invalid), feed, pipelined feed_nowait windows, flush,
advance, query, cost, snapshot, restore (and deliberately corrupted
restores), finalize, close, list, ping, mid-sequence v1→v2 hello
upgrades, checkpoint migrations and whole-shard restarts — and the
:class:`~repro.service.fuzzharness.TopologyHarness` applies each step
to an in-process :class:`~repro.service.session.Session` oracle and to
every configured live topology in lockstep, comparing responses (and
checkpoint blobs, byte for byte) after every op.  Any divergence or
hang raises a shrinkable :class:`DivergenceError`; hypothesis minimises
the sequence and the harness dumps it as JSON for
``python -m repro.service.fuzz_replay``.

Sessions and snapshots live in bundles and *stay there* after
finalize/close — ops addressed at dead ids are part of the vocabulary
(every topology must answer KeyError), not noise to be filtered out.

The file also holds the directed restart-vs-pipeline race (the one
schedule hypothesis cannot reliably reach): a shard restart racing a
window of in-flight ``feed_nowait``s must never hang and never corrupt
— acked feeds survive into the replacement worker, unacked ones surface
as clean ``ServiceError``s, and the session keeps serving.
"""

import asyncio
import os

import numpy as np
import pytest
from hypothesis import strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, multiple, rule

from repro.service.client import AsyncServiceClient, ServiceError
from repro.service.shard import ShardedMonitoringServer
from repro.service import wire

from .conftest import shared_harness, wire_pin

pytestmark = pytest.mark.fuzz

#: Valid session specs (paired with their block width ``n``).  Small on
#: purpose: collisions in n/k/seed make shrunk sequences readable, and
#: tiny nodes keep each compared op to a few milliseconds per topology.
SPECS = (
    {"algorithm": "approx-monitor", "n": 4, "k": 1, "eps": 0.2, "seed": 1},
    {"algorithm": "approx-monitor", "n": 6, "k": 2, "eps": 0.25, "seed": 3},
    {"algorithm": "exact-cor3.3", "n": 4, "k": 2, "seed": 5},
    {
        "algorithm": "approx-monitor", "n": 4, "k": 1, "eps": 0.2, "seed": 7,
        "workload": "zipf", "num_steps": 24, "block_size": 8,
    },
)

#: Specs every layer must reject — each exercises a different validator
#: (algorithm registry, SessionConfig bounds, wire field allowlist).
BAD_SPECS = (
    {"algorithm": "no-such-algorithm", "n": 4, "k": 1},
    {"algorithm": "approx-monitor", "n": 1, "k": 1},
    {"algorithm": "approx-monitor", "n": 4, "k": 9},
    {"algorithm": "approx-monitor", "n": 4, "k": 1, "bogus_field": True},
    {"algorithm": "approx-monitor", "n": 4, "k": 1, "workload": "zipf"},
)

#: Observation values: small non-negative integers as floats.  The law
#: is about protocol state, not numerics — tiny alphabets shrink well.
VALUES = st.integers(min_value=0, max_value=8).map(float)


class ProtocolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.harness = shared_harness()
        self.harness.reset()
        #: logical session id -> block width n (kept after death so
        #: dead-session feeds still send well-shaped blocks).
        self.width: dict[int, int] = {}
        #: snapshot index -> width of the session it captured.
        self.blob_width: dict[int, int] = {}

    sessions = Bundle("sessions")
    snapshots = Bundle("snapshots")

    def _block(self, data, logical: int, rows: int, width_delta: int = 0):
        n = self.width[logical] + width_delta
        return data.draw(
            st.lists(
                st.lists(VALUES, min_size=n, max_size=n),
                min_size=rows, max_size=rows,
            ),
            label="block",
        )

    # ---------------------------------------------------------------- #
    # Session lifecycle
    # ---------------------------------------------------------------- #
    @rule(target=sessions, spec=st.sampled_from(SPECS))
    def create(self, spec):
        logical = self.harness.create(dict(spec))
        if logical is None:
            return multiple()
        self.width[logical] = spec["n"]
        return logical

    @rule(spec=st.sampled_from(BAD_SPECS))
    def create_invalid(self, spec):
        assert self.harness.create(dict(spec)) is None

    @rule(session=sessions)
    def finalize(self, session):
        self.harness.finalize(session)

    @rule(session=sessions)
    def close(self, session):
        self.harness.close(session)

    # ---------------------------------------------------------------- #
    # Data plane
    # ---------------------------------------------------------------- #
    @rule(session=sessions, rows=st.integers(min_value=1, max_value=3), data=st.data())
    def feed(self, session, rows, data):
        self.harness.feed(session, self._block(data, session, rows))

    @rule(session=sessions, rows=st.integers(min_value=1, max_value=2), data=st.data())
    def feed_nowait(self, session, rows, data):
        self.harness.feed_nowait(session, self._block(data, session, rows))

    @rule(session=sessions, data=st.data())
    def feed_wrong_width(self, session, data):
        self.harness.feed(session, self._block(data, session, 1, width_delta=1))

    @rule(session=sessions, data=st.data(), pipelined=st.booleans())
    def feed_nonfinite(self, session, data, pipelined):
        block = self._block(data, session, 1)
        block[0][0] = float("nan")
        if pipelined:
            self.harness.feed_nowait(session, block)
        else:
            self.harness.feed(session, block)

    @rule()
    def flush(self):
        self.harness.flush()

    @rule(session=sessions, steps=st.sampled_from([None, 1, 3, 10]))
    def advance(self, session, steps):
        self.harness.advance(session, steps)

    # ---------------------------------------------------------------- #
    # Introspection
    # ---------------------------------------------------------------- #
    @rule(session=sessions)
    def query(self, session):
        self.harness.query(session)

    @rule(session=sessions)
    def cost(self, session):
        self.harness.cost(session)

    @rule()
    def list_sessions(self):
        self.harness.list_sessions()

    @rule()
    def ping(self):
        self.harness.ping()

    # ---------------------------------------------------------------- #
    # Checkpoints
    # ---------------------------------------------------------------- #
    @rule(target=snapshots, session=sessions)
    def snapshot(self, session):
        index = self.harness.snapshot(session)
        if index is None:
            return multiple()
        self.blob_width[index] = self.width[session]
        return index

    @rule(target=sessions, blob=snapshots)
    def restore(self, blob):
        logical = self.harness.restore(blob)
        if logical is None:
            return multiple()
        self.width[logical] = self.blob_width[blob]
        return logical

    @rule(blob=st.none() | snapshots)
    def corrupt_restore(self, blob):
        self.harness.corrupt_restore(blob)

    # ---------------------------------------------------------------- #
    # Connection + topology perturbations
    # ---------------------------------------------------------------- #
    @rule()
    def upgrade_wire(self):
        self.harness.upgrade_wire()

    @rule(enabled=st.booleans())
    def toggle_batching(self, enabled):
        # Flipping cohort coalescing mid-sequence must move nothing
        # observable: later compared ops check that against the oracle.
        self.harness.set_batching(enabled)

    @rule(enabled=st.booleans())
    def toggle_metrics(self, enabled):
        # The metrics-on/off transparency law: scraping and toggling
        # telemetry mid-sequence must move nothing observable either.
        self.harness.set_metrics(enabled)

    @rule(enabled=st.booleans())
    def toggle_durability(self, enabled):
        # WAL appends are transparent too: logging + checkpointing
        # (re-enable forces one) must move nothing observable.
        self.harness.set_durability(enabled)

    @rule(session=sessions)
    def migrate(self, session):
        self.harness.migrate(session)

    @rule(seed=st.integers(min_value=0, max_value=7))
    def restart_shard(self, seed):
        self.harness.restart_shard(seed)

    @rule(seed=st.integers(min_value=0, max_value=7))
    def crash_shard(self, seed):
        # kill -9 a worker, recover from the WAL: nothing acknowledged
        # may be lost, and the recovered state must keep matching the
        # oracle bit for bit (the durability law).
        self.harness.crash_shard(seed)


TestProtocolMachine = ProtocolMachine.TestCase


class TestRestartRacesPipeline:
    """Directed schedule: shard restarts inside a feed_nowait window."""

    N, FEEDS = 6, 48

    def test_no_hang_no_corruption(self):
        accept = wire.WIRE_V1 if wire_pin() == "v1" else wire.WIRE_V2

        async def scenario():
            server = ShardedMonitoringServer(shards=2, accept_wire=accept)
            await server.start()
            client = None
            try:
                client = await AsyncServiceClient.connect(
                    server.host, server.port, window=self.FEEDS
                )
                sid = await client.create_session(
                    algorithm="approx-monitor", n=self.N, k=2, eps=0.2, seed=11
                )
                block = np.arange(2 * self.N, dtype=np.float64).reshape(2, self.N)

                sent = 0
                errors: list[ServiceError] = []

                async def spam():
                    nonlocal sent
                    for _ in range(self.FEEDS):
                        try:
                            await client.feed_nowait(sid, block)
                        except ServiceError as exc:
                            errors.append(exc)
                            return
                        sent += 1
                        await asyncio.sleep(0)

                spam_task = asyncio.create_task(spam())
                await asyncio.sleep(0.005)  # let a window get in flight
                for index in range(server.num_shards):
                    await server.restart_shard(index)
                await spam_task
                try:
                    await client.flush()
                except ServiceError as exc:
                    errors.append(exc)

                # Unacked feeds surface as clean ServiceErrors (asserted
                # by the except clauses above — anything else propagates
                # and fails the test); acked feeds survived the restart:
                # the session keeps serving and its step counts exactly
                # the applied blocks.
                status = await client.query(sid)
                # Each 2-row block advances the step clock by 2; an odd
                # step would mean a block was half-applied by a restart.
                assert 0 <= status["step"] <= 2 * sent
                assert status["step"] % 2 == 0
                before = status["step"]
                applied = await client.feed(sid, block)
                assert applied["step"] == before + 2
                blob = await client.snapshot(sid)
                assert isinstance(blob, bytes) and blob
                return len(errors)
            finally:
                if client is not None:
                    await client.aclose()
                await server.aclose()

        # Never a hang: the whole schedule, restarts included, bounded.
        asyncio.run(asyncio.wait_for(scenario(), timeout=120))


if os.environ.get("REPRO_FUZZ_SELFTEST"):
    # Not part of any tier: `REPRO_FUZZ_SELFTEST=1 pytest -m fuzz -k smoke`
    # drives one representative hand-written sequence (the same one the
    # development smoke script uses) when iterating on the harness.
    class TestHarnessSmoke:
        def test_one_sequence(self):
            harness = shared_harness()
            harness.reset()
            s = harness.create(dict(SPECS[0]))
            harness.feed(s, [[1.0] * 4])
            harness.set_batching(False)
            harness.feed_nowait(s, [[2.0] * 4])
            harness.set_batching(True)
            harness.flush()
            blob = harness.snapshot(s)
            harness.restore(blob)
            harness.migrate(s)
            harness.restart_shard(1)
            harness.crash_shard(0)
            harness.set_durability(False)
            harness.set_durability(True)
            harness.query(s)
            harness.finalize(s)
            harness.list_sessions()
