"""The admin plane end to end: HTTP routes, SSE push, fleet invariants.

Everything here runs against real sockets — a monitoring server (plain
or sharded) with an :class:`~repro.service.admin.AdminServer` bound
next to it — and covers the ops-plane laws the unit tier cannot:

- the endpoint smoke across inproc / 1-shard / 4-shard topologies, with
  a lint-clean Prometheus exposition (``probe_admin`` is the same check
  CI's ``loadgen --admin-check`` runs);
- ``/watch`` SSE events carry monotonically non-decreasing counters
  while pipelined feeds are in flight;
- fleet counters never decrease across ``restart_shard`` (the
  generation-tagged aggregation regression test);
- metrics on vs off is observationally transparent: identical outputs,
  costs, and checkpoint bytes;
- the ``/migrate`` and ``/drain`` control routes, and the ``top``
  dashboard's pure renderer over a live ``/stats`` payload.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.service import AsyncServiceClient, MonitoringServer
from repro.service.admin import AdminServer, http_get, probe_admin
from repro.service.metrics import split_key
from repro.service.shard import ShardedMonitoringServer

N, K = 8, 2

#: Counter families that must never decrease at the fleet level, no
#: matter how many workers restart underneath the supervisor.
MONOTONE = {"repro_requests_total", "repro_steps_ingested_total"}


def spec(seed=3, **overrides):
    base = dict(algorithm="approx-monitor", n=N, k=K, eps=0.2, seed=seed)
    base.update(overrides)
    return base


def block(rows=4, scale=1.0):
    return (np.arange(rows * N, dtype=np.float64).reshape(rows, N) % 5) * scale


async def start_topology(shards):
    """A server of the given topology with an admin plane beside it."""
    if shards == 0:
        server = MonitoringServer()
    else:
        server = ShardedMonitoringServer(shards=shards)
    host, port = await server.start()
    admin = AdminServer(server)
    await admin.start()
    client = await AsyncServiceClient.connect(host, port)
    return server, admin, client


async def stop_topology(server, admin, client):
    await client.aclose()
    await admin.aclose()
    await server.aclose()


async def http_post(host, port, path):
    """POST twin of :func:`http_get` (bodies are ignored by contract)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: 0\r\nConnection: close\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        raw = await reader.read(-1)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.decode("latin-1").split()[1])
    return status, body


def fleet_totals(dump):
    """Sum each counter family across its shard/op labels."""
    totals: dict[str, float] = {}
    for key, value in dump["counters"].items():
        name, _ = split_key(key)
        totals[name] = totals.get(name, 0) + value
    return totals


class TestEndpointSmoke:
    @pytest.mark.parametrize("shards", [0, 1, 4])
    def test_routes_answer_and_exposition_lints(self, shards):
        async def scenario():
            server, admin, client = await start_topology(shards)
            try:
                sid = await client.create_session(**spec())
                await client.feed(sid, block())

                probe = await probe_admin(admin.host, admin.port)
                assert probe["ok"], probe["lint_problems"]
                assert probe["content_type"].startswith("text/plain")
                assert probe["samples"] > 0
                assert probe["sessions"] == 1

                status, _, body = await http_get(admin.host, admin.port, "/stats")
                stats = json.loads(body)
                assert status == 200
                assert stats["sessions"] == 1
                assert stats["enabled"] is True
                if shards:
                    assert stats["shards"] == shards
                    totals = fleet_totals(stats["metrics"])
                    assert totals["repro_steps_ingested_total"] == 4
                else:
                    assert "shards" not in stats

                status, _, body = await http_get(admin.host, admin.port, "/sessions")
                assert status == 200
                listed = json.loads(body)["sessions"]
                assert any(row["session"] == sid for row in listed)

                status, _, body = await http_get(admin.host, admin.port, "/nope")
                assert status == 404
                status, _ = await http_post(admin.host, admin.port, "/metrics")
                assert status == 404  # wrong method is no route either
            finally:
                await stop_topology(server, admin, client)

        asyncio.run(scenario())


class TestWatchChannel:
    def test_sse_counters_are_monotone_under_pipelined_feeds(self):
        async def scenario():
            server, admin, client = await start_topology(0)
            try:
                sid = await client.create_session(**spec())

                async def spam():
                    for _ in range(30):
                        await client.feed_nowait(sid, block(rows=2))
                        await asyncio.sleep(0)
                    await client.flush()

                feeder = asyncio.create_task(spam())

                reader, writer = await asyncio.open_connection(
                    admin.host, admin.port
                )
                events = []
                try:
                    writer.write(
                        b"GET /watch?interval=0.05 HTTP/1.1\r\n"
                        b"Host: x\r\nConnection: close\r\n\r\n"
                    )
                    await writer.drain()
                    head = await reader.readuntil(b"\r\n\r\n")
                    assert b"200 OK" in head
                    assert b"text/event-stream" in head
                    while len(events) < 5:
                        line = await asyncio.wait_for(reader.readline(), timeout=10)
                        if line.startswith(b"data: "):
                            events.append(json.loads(line[6:]))
                finally:
                    writer.close()
                await feeder

                assert [e["seq"] for e in events] == list(range(5))
                for family in MONOTONE:
                    trace = [e["counters"].get(family, 0) for e in events]
                    assert trace == sorted(trace), (family, trace)
                # the window of feeds actually showed up on the channel
                assert events[-1]["counters"]["repro_requests_total"] > events[0][
                    "counters"
                ].get("repro_requests_total", 0)
            finally:
                await stop_topology(server, admin, client)

        asyncio.run(scenario())

    def test_watch_subscriber_is_cancelled_on_aclose(self):
        async def scenario():
            server, admin, client = await start_topology(0)
            reader, writer = await asyncio.open_connection(admin.host, admin.port)
            writer.write(
                b"GET /watch?interval=0.05 HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            await writer.drain()
            await reader.readuntil(b"\r\n\r\n")
            await client.aclose()
            await admin.aclose()  # must not hang on the open stream
            await server.aclose()
            assert await asyncio.wait_for(reader.read(-1), timeout=5) is not None
            writer.close()

        asyncio.run(asyncio.wait_for(scenario(), timeout=30))


class TestFleetAggregation:
    def test_restart_shard_never_decreases_fleet_counters(self):
        """Satellite law: worker counters reset on restart, the fleet
        view must not — the generation-tagged carry absorbs the loss."""

        async def scenario():
            server, admin, client = await start_topology(2)
            try:
                sids = [
                    await client.create_session(**spec(seed=3 + i)) for i in range(4)
                ]
                for sid in sids:
                    await client.feed(sid, block())

                before = fleet_totals((await client.metrics())["metrics"])
                assert before["repro_steps_ingested_total"] == 16

                for index in range(server.num_shards):
                    await server.restart_shard(index)

                after = fleet_totals((await client.metrics())["metrics"])
                for family in MONOTONE:
                    assert after.get(family, 0) >= before[family], family
                assert after["repro_shard_restarts_total"] == 2

                # and the fleet keeps counting on the replacement workers
                for sid in sids:
                    await client.feed(sid, block())
                final = fleet_totals((await client.metrics())["metrics"])
                assert (
                    final["repro_steps_ingested_total"]
                    >= after["repro_steps_ingested_total"] + 16
                )
            finally:
                await stop_topology(server, admin, client)

        asyncio.run(asyncio.wait_for(scenario(), timeout=120))


class TestTransparency:
    def test_metrics_off_changes_no_observable_output(self):
        """Directed twin of the fuzz law: the same feeds with metrics
        enabled vs disabled yield bit-identical outputs, costs, and
        checkpoint bytes."""

        async def run_one(enabled):
            server = MonitoringServer()
            host, port = await server.start()
            client = await AsyncServiceClient.connect(host, port)
            try:
                await client.metrics(enabled=enabled)
                sid = await client.create_session(**spec())
                for i in range(6):
                    await client.feed(sid, block(rows=3, scale=1.0 + i))
                status = await client.query(sid)
                cost = await client.cost(sid)
                blob = await client.snapshot(sid)
                result = await client.finalize(sid)
                return status, cost, blob, result
            finally:
                await client.aclose()
                await server.aclose()

        async def scenario():
            on = await run_one(True)
            off = await run_one(False)
            assert on[0] == off[0]  # query: step + output positions
            assert on[1] == off[1]  # cost ledger
            assert on[2] == off[2]  # snapshot blob, byte for byte
            assert on[3] == off[3]  # finalize summary

        asyncio.run(scenario())

    def test_toggle_mid_run_and_scrape_are_invisible(self):
        async def scenario():
            server, admin, client = await start_topology(0)
            try:
                sid = await client.create_session(**spec())
                await client.feed(sid, block())
                await client.metrics(enabled=False)
                await client.feed(sid, block(scale=2.0))
                await probe_admin(admin.host, admin.port)  # scrape while off
                await client.metrics(enabled=True)
                await client.feed(sid, block(scale=3.0))
                blob = await client.snapshot(sid)
            finally:
                await stop_topology(server, admin, client)

            reference = MonitoringServer()
            host, port = await reference.start()
            ref_client = await AsyncServiceClient.connect(host, port)
            try:
                sid = await ref_client.create_session(**spec())
                for scale in (1.0, 2.0, 3.0):
                    await ref_client.feed(sid, block(scale=scale))
                assert await ref_client.snapshot(sid) == blob
            finally:
                await ref_client.aclose()
                await reference.aclose()

        asyncio.run(scenario())


class TestControlRoutes:
    def test_migrate_over_http(self):
        async def scenario():
            server, admin, client = await start_topology(2)
            try:
                sid = await client.create_session(**spec())
                await client.feed(sid, block())
                origin = (await client.list_sessions())[0]["shard"]
                status, body = await http_post(
                    admin.host, admin.port, f"/migrate?session={sid}"
                )
                assert status == 200
                moved = json.loads(body)
                assert moved["moved"] is True
                assert moved["from_shard"] == origin
                assert moved["to_shard"] != origin
                # the session still serves after the move
                ack = await client.feed(sid, block())
                assert ack["step"] == 8

                status, body = await http_post(admin.host, admin.port, "/migrate")
                assert status == 400
                status, body = await http_post(
                    admin.host, admin.port, "/migrate?session=s999"
                )
                assert status == 400  # KeyError maps to the 400 envelope
            finally:
                await stop_topology(server, admin, client)

        asyncio.run(asyncio.wait_for(scenario(), timeout=120))

    def test_migrate_rejected_on_unsharded_server(self):
        async def scenario():
            server, admin, client = await start_topology(0)
            try:
                status, body = await http_post(
                    admin.host, admin.port, "/migrate?session=s1"
                )
                assert status == 400
                assert "sharded" in json.loads(body)["error"]
            finally:
                await stop_topology(server, admin, client)

        asyncio.run(scenario())

    def test_drain_stops_the_serve_loop(self):
        async def scenario():
            server = MonitoringServer()
            await server.start()
            admin = AdminServer(server)
            await admin.start()
            serve_task = asyncio.create_task(server.serve_until_shutdown())
            status, body = await http_post(admin.host, admin.port, "/drain")
            assert status == 200
            assert json.loads(body)["stopping"] is True
            await asyncio.wait_for(serve_task, timeout=5)
            await admin.aclose()

        asyncio.run(scenario())


class TestDashboardRenderer:
    def test_render_stats_over_a_live_payload(self):
        from repro.service.__main__ import render_stats

        async def scenario():
            server, admin, client = await start_topology(0)
            try:
                sid = await client.create_session(**spec())
                for i in range(4):
                    await client.feed(sid, block(scale=1.0 + i))
                _, _, body = await http_get(admin.host, admin.port, "/stats")
                return json.loads(body), sid
            finally:
                await stop_topology(server, admin, client)

        stats, sid = asyncio.run(scenario())
        frame = render_stats(stats)
        assert "sessions" in frame
        assert "steps ingested" in frame
        assert sid in frame  # the per-session telemetry row made it in
        for line in frame.splitlines():
            assert len(line) <= 100
