"""Checkpoints are wire-neutral and canonical.

A snapshot blob is raw pickled bytes end to end: the v1 line protocol
base64s it at the edge, a v2 connection ships it as a binary frame, and
the bytes must be the same either way.  These tests pin the two
cross-wire round trips (v1-snapshot → v2-restore and the reverse) and
the canonicality law the differential fuzz tier asserts on every
snapshot op: blob bytes are a pure function of session state —
snapshot → restore → snapshot is byte-identical, no matter how often
the state already crossed a pickle boundary.

The law is easy to lose silently: unpickling materialises fresh
``np.dtype`` instances while freshly built arrays hold numpy's interned
singletons, and the pickler memoises dtypes by *identity* — a restored
graph mixing both pickles to different bytes than a never-pickled one
(caught by the fuzz harness, fixed by dtype canonicalisation in
``Session.restore``).
"""

import asyncio

import numpy as np
import pytest

from repro.service import wire
from repro.service.client import AsyncServiceClient
from repro.service.server import MonitoringServer
from repro.service.session import Session, SessionConfig

N, K = 6, 2


def _spec(seed: int = 3) -> dict:
    return {"algorithm": "approx-monitor", "n": N, "k": K, "eps": 0.2, "seed": seed}


def _blocks(count: int, rng_seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(rng_seed)
    return [np.abs(rng.normal(10, 3, size=(4, N))) for _ in range(count)]


def _status(response: dict) -> dict:
    """A query payload minus its connection-local envelope."""
    return {k: v for k, v in response.items() if k not in ("id", "ok", "session")}


async def _with_clients(scenario):
    """Run ``scenario(v1_client, v2_client)`` against one v2 server."""
    server = MonitoringServer(accept_wire=wire.WIRE_V2)
    await server.start()
    v1 = v2 = None
    try:
        v1 = await AsyncServiceClient.connect(
            server.host, server.port, wire_protocol="v1"
        )
        v2 = await AsyncServiceClient.connect(
            server.host, server.port, wire_protocol="v2"
        )
        assert v1.wire_version == wire.WIRE_V1
        assert v2.wire_version == wire.WIRE_V2
        return await scenario(v1, v2)
    finally:
        for client in (v1, v2):
            if client is not None:
                await client.aclose()
        await server.aclose()


class TestCrossWireRoundTrip:
    @pytest.mark.parametrize("direction", ["v1_to_v2", "v2_to_v1"])
    def test_snapshot_restores_across_framings(self, direction):
        """A blob taken over one framing resumes over the other, and the
        resumed session continues bit-identically with the original."""

        async def scenario(v1, v2):
            src, dst = (v1, v2) if direction == "v1_to_v2" else (v2, v1)
            blocks = _blocks(6)
            sid = await src.create_session(**_spec())
            for block in blocks[:3]:
                await src.feed(sid, block)
            blob = await src.snapshot(sid)

            resumed = await dst.restore(blob)
            assert resumed != sid
            assert _status(await dst.query(resumed)) == _status(await src.query(sid))

            for block in blocks[3:]:
                original = await src.feed(sid, block)
                resumed_step = await dst.feed(resumed, block)
                assert original["step"] == resumed_step["step"]
                assert original["messages"] == resumed_step["messages"]
            assert _status(await src.query(sid)) == _status(await dst.query(resumed))
            assert (await src.snapshot(sid)) == (await dst.snapshot(resumed))

        asyncio.run(_with_clients(scenario))

    def test_same_session_snapshots_identically_on_both_framings(self):
        """base64 lines and binary frames carry the very same bytes."""

        async def scenario(v1, v2):
            sid = await v1.create_session(**_spec())
            for block in _blocks(3):
                await v1.feed(sid, block)
            assert (await v1.snapshot(sid)) == (await v2.snapshot(sid))

        asyncio.run(_with_clients(scenario))


class TestBlobCanonicality:
    def _session(self, feeds: int = 4) -> Session:
        session = Session(SessionConfig(**_spec()))
        for block in _blocks(feeds):
            session.feed(block)
        return session

    def test_snapshot_restore_snapshot_is_byte_identical(self):
        blob = self._session().snapshot()
        assert Session.restore(blob).snapshot() == blob

    def test_canonical_through_repeated_round_trips(self):
        blob = self._session().snapshot()
        for _ in range(3):
            restored = Session.restore(blob)
            assert restored.snapshot() == blob
            # Mutating after a restore must also stay canonical.
            restored.feed(_blocks(1, rng_seed=9)[0])
            blob = restored.snapshot()
            assert Session.restore(blob).snapshot() == blob

    def test_restored_continuation_matches_uninterrupted_run(self):
        tail = _blocks(3, rng_seed=7)
        uninterrupted = self._session()
        restored = Session.restore(uninterrupted.snapshot())
        for block in tail:
            assert uninterrupted.feed(block.copy()) == restored.feed(block.copy())
        assert uninterrupted.status() == restored.status()
        assert uninterrupted.snapshot() == restored.snapshot()
