"""Chaos: kill -9 a shard worker mid-pipeline — nothing acknowledged is lost.

The PR's acceptance law, asserted end to end: a sharded server with a
WAL directory gets a worker SIGKILLed while a window of pipelined feeds
is in flight; ``restart_shard`` must recover every resident session
from the worker's write-ahead log (``lost == 0``), and after the client
re-drives the unacknowledged tail (query the recovered step, resend
from that block boundary — the documented recovery protocol of
docs/OPERATIONS.md) every observable — F(t) status, cost snapshot,
checkpoint bytes, finalize result — is bit-identical to an in-process
twin that never crashed.  CI runs this file under both wire pins
(``REPRO_WIRE=v1`` / ``v2``); the client honors the variable on
connect.

The second scenario is the zero-downtime flavor: a graceful rolling
restart (``restart_shard(..., graceful=True)``) drains residents by
checkpoint-migration instead of replaying them, with the same
bit-identical outcome and zero loss.
"""

import asyncio
import os
import signal

from repro.service.client import AsyncServiceClient, ServiceError
from repro.service.session import session_from_wire
from repro.service.shard import ShardedMonitoringServer
from repro.streams import registry

T, N, K, EPS = 360, 16, 3, 0.15
BLOCK = 60
SESSIONS = 3
PREFIX = 2  # blocks acknowledged one-by-one before the pipelined burst


def spec(index: int) -> dict:
    return dict(algorithm="approx-monitor", n=N, k=K, eps=EPS, seed=3 + index)


def blocks_for(index: int) -> list:
    source = registry.stream("zipf", T, N, block_size=BLOCK, rng=13 + index)
    return list(source.iter_blocks())


def twin(index: int):
    """A never-crashed in-process session fed the full stream."""
    session = session_from_wire(spec(index))
    for block in blocks_for(index):
        session.feed(block)
    return session


def result_payload(result) -> dict:
    """The finalize summary exactly as the server serializes it."""
    return {
        "algorithm": result.algorithm_name,
        "num_steps": result.num_steps,
        "n": result.n,
        "k": result.k,
        "messages": result.messages,
        "output_changes": result.output_changes,
        "max_rounds_per_step": result.ledger.max_rounds_per_step,
        "by_scope": result.ledger.by_scope(),
    }


async def _flush_all(client) -> int:
    """Drain the pipeline; count (don't propagate) failed feeds."""
    errors = 0
    while True:
        try:
            await client.flush()
            return errors
        except ServiceError:
            errors += 1


async def _assert_bit_identical(client, sids) -> None:
    """Every observable matches the never-crashed twin, bit for bit."""
    for index, sid in enumerate(sids):
        reference = twin(index)
        status = await client.query(sid)
        assert status["step"] == reference.step == T
        assert status["messages"] == reference.messages
        cost = await client.cost(sid)
        assert cost["messages"] == reference.cost().messages
        assert cost["by_scope"] == reference.bill()
        assert await client.snapshot(sid) == reference.snapshot()
        assert await client.finalize(sid) == result_payload(reference.finalize())


class TestKillNineMidPipeline:
    def test_no_acknowledged_feed_lost(self, tmp_path):
        async def scenario():
            server = ShardedMonitoringServer(shards=2, wal_dir=tmp_path)
            await server.start()
            client = None
            try:
                client = await AsyncServiceClient.connect(
                    server.host, server.port, window=8
                )
                sids = [
                    await client.create_session(**spec(i))
                    for i in range(SESSIONS)
                ]
                streams = {i: blocks_for(i) for i in range(SESSIONS)}
                for i, sid in enumerate(sids):
                    for block in streams[i][:PREFIX]:
                        await client.feed(sid, block)

                # pipeline the whole remaining stream, then murder the
                # shard hosting sids[0] while the window is in flight
                victim = server._routes[sids[0]].shard
                sent_errors = 0
                for count in range(PREFIX, T // BLOCK):
                    for i, sid in enumerate(sids):
                        try:
                            await client.feed_nowait(sid, streams[i][count])
                        except ServiceError:
                            sent_errors += 1
                os.kill(
                    server._workers[victim].process.pid, signal.SIGKILL
                )
                await _flush_all(client)

                info = await server.restart_shard(victim)
                assert info["lost"] == 0
                assert info["recovered"] >= 1  # sids[0] lives there

                # the documented client recovery protocol: query the
                # recovered step, resend from that block boundary —
                # never blind-retry (a duplicate would double-feed)
                for i, sid in enumerate(sids):
                    status = await client.query(sid)
                    step = status["step"]
                    assert step % BLOCK == 0  # blocks apply atomically
                    assert step >= PREFIX * BLOCK  # acked prefix intact
                    for block in streams[i][step // BLOCK :]:
                        await client.feed(sid, block)

                await _assert_bit_identical(client, sids)
            finally:
                if client is not None:
                    await client.aclose()
                await server.aclose()

        asyncio.run(asyncio.wait_for(scenario(), timeout=300))


class TestGracefulRollingRestart:
    def test_drain_migrates_without_loss(self, tmp_path):
        async def scenario():
            server = ShardedMonitoringServer(shards=2, wal_dir=tmp_path)
            await server.start()
            client = None
            try:
                client = await AsyncServiceClient.connect(server.host, server.port)
                sids = [
                    await client.create_session(**spec(i))
                    for i in range(SESSIONS)
                ]
                streams = {i: blocks_for(i) for i in range(SESSIONS)}
                half = (T // BLOCK) // 2
                for i, sid in enumerate(sids):
                    for block in streams[i][:half]:
                        await client.feed(sid, block)

                # roll the whole fleet, one shard at a time; residents
                # drain to peers via checkpoint migration, not replay
                migrated = 0
                for index in range(server.num_shards):
                    info = await server.restart_shard(index, graceful=True)
                    assert info["lost"] == 0
                    migrated += info["migrated"]
                assert migrated >= len(sids)  # every resident drained

                for i, sid in enumerate(sids):
                    status = await client.query(sid)
                    assert status["step"] == half * BLOCK  # no loss
                    for block in streams[i][half:]:
                        await client.feed(sid, block)

                await _assert_bit_identical(client, sids)
            finally:
                if client is not None:
                    await client.aclose()
                await server.aclose()

        asyncio.run(asyncio.wait_for(scenario(), timeout=300))
