"""Load generator: report integrity against an in-process server."""

import asyncio

import pytest

from repro.service import MonitoringServer
from repro.service.loadgen import run_loadgen
from repro.streams import registry


def loadgen_report(**kwargs):
    async def scenario():
        server = MonitoringServer()
        host, port = await server.start()
        try:
            return await run_loadgen(host, port, **kwargs)
        finally:
            await server.aclose()

    return asyncio.run(scenario())


class TestLoadgen:
    def test_report_shape_and_totals(self):
        sessions, steps = 3, 200
        report = loadgen_report(
            workload="iid", sessions=sessions, concurrency=2,
            num_steps=steps, n=8, k=2, eps=0.2, block_size=64, seed=7,
        )
        assert report["total_steps"] == sessions * steps
        assert len(report["per_session"]) == sessions
        assert report["steps_per_s"] > 0
        assert report["messages_per_step"] > 0
        for row in report["per_session"]:
            assert row["steps"] == steps
            assert row["messages"] > 0

    def test_p99_spread_with_multiple_sessions(self):
        report = loadgen_report(
            workload="iid", sessions=3, concurrency=3,
            num_steps=150, n=8, k=2, eps=0.2, block_size=50, seed=5,
        )
        spread = report["latency_ms"]["p99_spread_x"]
        assert spread >= 1.0  # max/min of per-session p99s

    def test_p99_spread_absent_for_single_session(self):
        report = loadgen_report(
            workload="iid", sessions=1, concurrency=1,
            num_steps=100, n=8, k=2, eps=0.2, block_size=50, seed=5,
        )
        assert "p99_spread_x" not in report["latency_ms"]

    def test_sessions_monitor_distinct_streams(self):
        report = loadgen_report(
            workload="iid", sessions=3, concurrency=3,
            num_steps=150, n=8, k=2, eps=0.2, block_size=50, seed=1,
        )
        messages = [row["messages"] for row in report["per_session"]]
        # Distinct stream + channel seeds: identical totals across all
        # three sessions would mean the seeds collapsed.
        assert len(set(messages)) > 1

    def test_deterministic_given_seed(self):
        kwargs = dict(
            workload="zipf", sessions=2, concurrency=1,
            num_steps=120, n=8, k=2, eps=0.2, block_size=40, seed=3,
        )
        a = loadgen_report(**kwargs)
        b = loadgen_report(**kwargs)
        assert [r["messages"] for r in a["per_session"]] == \
               [r["messages"] for r in b["per_session"]]

    def test_bad_workload_fails_before_connecting(self):
        with pytest.raises(registry.WorkloadParamError):
            loadgen_report(workload="zipf", workload_params={"alpha": -2.0},
                           sessions=1, num_steps=50, n=8, k=2)

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError, match="sessions"):
            loadgen_report(sessions=0, num_steps=10, n=8, k=2)
        with pytest.raises(ValueError, match="concurrency"):
            loadgen_report(sessions=1, concurrency=0, num_steps=10, n=8, k=2)
