"""Unit tier for the ops-plane registry (repro.service.metrics).

Pure-Python instruments, the dump algebra, the Prometheus renderer and
its lint, and the cross-generation aggregator — no sockets here; the
wired-up admin plane is covered by test_admin.py.
"""

import pytest

from repro.service import metrics as m


class TestInstruments:
    def test_counter_and_gauge(self):
        reg = m.MetricsRegistry()
        counter = reg.counter("repro_requests_total")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        assert reg.counter("repro_requests_total") is counter  # get-or-create
        gauge = reg.gauge("repro_depth")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2

    def test_labels_key_rendering_round_trips(self):
        reg = m.MetricsRegistry()
        reg.counter("repro_op_total", op="feed", shard=2).inc(5)
        dump = reg.dump()
        (key,) = dump["counters"]
        assert key == 'repro_op_total{op="feed",shard="2"}'  # labels sorted
        name, labels = m.split_key(key)
        assert name == "repro_op_total"
        assert labels == {"op": "feed", "shard": "2"}
        assert m.split_key("bare") == ("bare", {})

    def test_histogram_buckets_and_percentiles(self):
        hist = m.Histogram(bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 1, 1]  # last cell is +inf
        assert hist.count == 5
        assert hist.sum == pytest.approx(56.05)
        pct = m.histogram_percentiles(
            {"le": list(hist.bounds), "counts": hist.counts,
             "sum": hist.sum, "count": hist.count}
        )
        assert 0.1 < pct["p50"] <= 1.0  # the median lands in (0.1, 1] bucket
        assert pct["p99"] == 10.0  # +inf bucket reports its lower bound
        assert m.histogram_percentiles(
            {"le": [1.0], "counts": [0, 0], "sum": 0.0, "count": 0}
        ) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="sorted"):
            m.Histogram(bounds=(1.0, 0.1))

    def test_ring_series_is_bounded(self):
        series = m.RingSeries(maxlen=4)
        for i in range(10):
            series.append(i, i * i)
        assert len(series) == 4
        xs, ys = series.points()
        assert xs == [6, 7, 8, 9]
        assert ys == [36, 49, 64, 81]

    def test_gauge_fn_sampled_at_dump_time(self):
        reg = m.MetricsRegistry()
        depth = [0]
        reg.register_gauge_fn("repro_queue", lambda: depth[0])
        assert reg.dump()["gauges"]["repro_queue"] == 0
        depth[0] = 7
        assert reg.dump()["gauges"]["repro_queue"] == 7

    def test_gauge_fn_failure_never_fails_the_scrape(self):
        reg = m.MetricsRegistry()
        reg.register_gauge_fn("repro_bad", lambda: 1 / 0)
        reg.counter("repro_ok").inc()
        dump = reg.dump()
        assert dump["counters"]["repro_ok"] == 1
        assert "repro_bad" not in dump["gauges"]

    def test_drop_series(self):
        reg = m.MetricsRegistry()
        reg.series("repro_cost", session="s1").append(1, 2)
        reg.drop_series("repro_cost", session="s1")
        assert reg.dump()["series"] == {}


class TestStatsView:
    def test_behaves_like_the_legacy_dict(self):
        reg = m.MetricsRegistry()
        requests = reg.counter("repro_requests_total")
        view = m.StatsView({"requests": requests, "connections": reg.counter("c")})
        view["requests"] += 3
        assert requests.value == 3
        requests.inc()
        assert view["requests"] == 4  # live: registry writes show through
        assert dict(view) == {"requests": 4, "connections": 0}
        assert len(view) == 2


class TestDumpAlgebra:
    def test_merge_adds_counters_gauges_and_histogram_cells(self):
        a = m.new_dump()
        a["counters"]["x"] = 2
        a["gauges"]["g"] = 1
        a["histograms"]["h"] = {"le": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1}
        b = m.new_dump()
        b["counters"]["x"] = 3
        b["counters"]["y"] = 1
        b["gauges"]["g"] = 2
        b["histograms"]["h"] = {"le": [1.0], "counts": [0, 2], "sum": 9.0, "count": 2}
        m.merge_into(a, b)
        assert a["counters"] == {"x": 5, "y": 1}
        assert a["gauges"]["g"] == 3
        assert a["histograms"]["h"] == {
            "le": [1.0], "counts": [1, 2], "sum": 9.5, "count": 3,
        }

    def test_relabel_appends_to_every_key(self):
        dump = m.new_dump()
        dump["counters"]['x{op="feed"}'] = 1
        dump["gauges"]["g"] = 2
        out = m.relabel(dump, shard=3)
        assert out["counters"] == {'x{op="feed",shard="3"}': 1}
        assert out["gauges"] == {'g{shard="3"}': 2}

    def test_generation_aggregator_is_monotone_across_restarts(self):
        agg = m.GenerationAggregator()

        def dump(steps):
            d = m.new_dump()
            d["counters"]["repro_steps_total"] = steps
            d["gauges"]["repro_links"] = 4  # gauges must NOT accumulate
            return d

        agg.update(0, generation=0, dump=dump(100))
        assert agg.shard_totals()[0]["counters"]["repro_steps_total"] == 100
        # The worker restarts: its counter resets to zero, the
        # generation tag bumps, and the total must carry — not dip.
        agg.update(0, generation=1, dump=dump(0))
        total = agg.shard_totals()[0]
        assert total["counters"]["repro_steps_total"] == 100
        agg.update(0, generation=1, dump=dump(30))
        total = agg.shard_totals()[0]
        assert total["counters"]["repro_steps_total"] == 130
        assert total["gauges"]["repro_links"] == 4  # from last only

    def test_aggregator_same_generation_updates_replace(self):
        agg = m.GenerationAggregator()
        d = m.new_dump()
        d["counters"]["c"] = 10
        agg.update(1, generation=0, dump=d)
        d2 = m.new_dump()
        d2["counters"]["c"] = 15
        agg.update(1, generation=0, dump=d2)
        assert agg.shard_totals()[1]["counters"]["c"] == 15


class TestExposition:
    def _fleet_dump(self):
        reg = m.MetricsRegistry()
        reg.counter("repro_requests_total").inc(7)
        reg.counter("repro_op_requests_total", op="feed").inc(3)
        reg.gauge("repro_sessions").set(2)
        hist = reg.histogram("repro_op_latency_seconds", bounds=(0.01, 0.1), op="feed")
        hist.observe(0.005)
        hist.observe(0.05)
        hist.observe(5.0)
        reg.series("repro_cost", session="s1").append(1, 10)  # no exposition form
        return reg.dump()

    def test_render_is_lint_clean(self):
        text = m.render_prometheus(self._fleet_dump())
        assert m.lint_exposition(text) == []
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_op_requests_total{op="feed"} 3' in text
        # Histogram buckets are cumulative and +Inf-terminated.
        assert 'le="+Inf",op="feed"} 3' in text
        assert 'repro_op_latency_seconds_count{op="feed"} 3' in text
        assert "repro_cost" not in text  # series are JSON/SSE-only

    def test_lint_catches_malformed_samples(self):
        assert m.lint_exposition("not a sample line at all\n")
        assert m.lint_exposition("# TYPE x counter\nx 1")  # missing newline
        assert any(
            "no # TYPE" in p for p in m.lint_exposition("orphan_metric 1\n")
        )

    def test_lint_catches_non_cumulative_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        assert any("not cumulative" in p for p in m.lint_exposition(text))

    def test_summarize_annotates_percentiles(self):
        out = m.summarize(self._fleet_dump())
        (hist,) = out["histograms"].values()
        assert set(hist) >= {"le", "counts", "sum", "count", "p50", "p95", "p99"}
        assert 0.01 < hist["p50"] <= 0.1
