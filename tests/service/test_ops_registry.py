"""Drift tests for the op registry (src/repro/service/ops.py).

The registry is the single source of truth for the op vocabulary; the
wire codec, both server classes, the shard pass-through fast path and
the async client all derive their tables from it.  These tests pin the
derivations so a new op (or a renamed handler/client method) cannot
land in one consumer without the others noticing.
"""

import inspect
import re
from pathlib import Path

import pytest

from repro.service import ops, shard, wire
from repro.service.client import AsyncServiceClient
from repro.service.server import MonitoringServer
from repro.service.shard import ShardedMonitoringServer


class TestRegistryShape:
    def test_names_and_codes_are_bijective(self):
        assert len({spec.name for spec in ops.OPS}) == len(ops.OPS)
        assert len({spec.code for spec in ops.OPS}) == len(ops.OPS)
        assert ops.OP_NAMES == {code: name for name, code in ops.OP_CODES.items()}

    def test_codes_are_append_only_and_pinned(self):
        """The v2 frame header carries these exact numbers: reassigning
        one silently breaks wire compatibility, so the full mapping is
        pinned here and may only ever gain entries."""
        assert ops.OP_CODES == {
            "ping": 1, "create": 2, "feed": 3, "advance": 4, "query": 5,
            "cost": 6, "snapshot": 7, "restore": 8, "finalize": 9,
            "close": 10, "list": 11, "shutdown": 12, "migrate": 13,
            "hello": 14, "batch": 15, "metrics": 16, "durability": 17,
        }

    def test_flag_consistency(self):
        for spec in ops.OPS:
            if spec.creates_session or spec.removes_session:
                assert spec.creates_session != spec.removes_session, spec.name
            if spec.removes_session or spec.mutates:
                assert spec.needs_session, spec.name
            if spec.passthrough:
                # The supervisor routes a spliced frame on its session
                # header alone — only session-addressed ops qualify.
                assert spec.needs_session, spec.name
                assert not spec.supervisor_only, spec.name


class TestDerivedTables:
    def test_wire_reexports_the_registry(self):
        assert wire.OP_CODES is ops.OP_CODES
        assert wire.OP_NAMES is ops.OP_NAMES

    def test_server_table_is_derived(self):
        assert set(MonitoringServer._OPS) == ops.vocabulary(supervisor=False)
        for name, handler in MonitoringServer._OPS.items():
            assert handler is getattr(MonitoringServer, f"_op_{name}")

    def test_supervisor_table_is_derived(self):
        assert set(ShardedMonitoringServer._OPS) == ops.vocabulary(supervisor=True)
        assert "migrate" in ShardedMonitoringServer._OPS
        assert "migrate" not in MonitoringServer._OPS
        for name, handler in ShardedMonitoringServer._OPS.items():
            assert handler is getattr(ShardedMonitoringServer, f"_op_{name}")

    def test_inline_ops_match(self):
        assert MonitoringServer.INLINE_OPS == ops.inline_ops()
        assert ops.inline_ops() <= ops.vocabulary(supervisor=True)

    def test_passthrough_codes_match(self):
        assert shard.ShardedMonitoringServer._PASSTHROUGH_CODES == ops.passthrough_codes()
        assert ops.passthrough_codes() == {
            spec.code for spec in ops.OPS if spec.passthrough
        }

    def test_handler_table_rejects_missing_handlers(self):
        class Incomplete:
            def _op_ping(self):
                pass

        with pytest.raises(TypeError, match="lacks a handler"):
            ops.handler_table(Incomplete)


class TestClientSurface:
    def test_every_op_has_its_client_method(self):
        """Each registered ``client_method`` must exist on the async
        client as a coroutine function (``hello`` alone is issued by
        ``connect``, so it carries no wrapper)."""
        for spec in ops.OPS:
            if spec.client_method is None:
                assert spec.name == "hello"
                continue
            method = getattr(AsyncServiceClient, spec.client_method)
            assert inspect.iscoroutinefunction(method), spec.name

    def test_session_ops_take_a_session_argument(self):
        for spec in ops.OPS:
            if spec.client_method is None or not spec.needs_session:
                continue
            params = inspect.signature(
                getattr(AsyncServiceClient, spec.client_method)
            ).parameters
            assert "session" in params, spec.name


class TestWireDoc:
    """docs/WIRE.md's hand-written op table must match the registry."""

    DOC = Path(__file__).resolve().parents[2] / "docs" / "WIRE.md"

    def _doc_rows(self) -> dict[int, dict]:
        rows = {}
        for line in self.DOC.read_text().splitlines():
            # | code | `op` | `client method` | inline | passthrough | notes |
            match = re.match(
                r"\|\s*(\d+)\s*\|\s*`([a-z_]+)`\s*\|\s*(`([a-z_]+)`|—)\s*"
                r"\|\s*(yes)?\s*\|\s*(yes)?\s*\|",
                line,
            )
            if match is None:
                continue
            rows[int(match.group(1))] = {
                "name": match.group(2),
                "client_method": match.group(4),
                "inline": match.group(5) == "yes",
                "passthrough": match.group(6) == "yes",
            }
        return rows

    def test_table_matches_registry(self):
        rows = self._doc_rows()
        assert sorted(rows) == sorted(spec.code for spec in ops.OPS), (
            "docs/WIRE.md op table is missing codes (or invents them)"
        )
        for spec in ops.OPS:
            row = rows[spec.code]
            assert row["name"] == spec.name, spec.code
            assert row["client_method"] == spec.client_method, spec.name
            assert row["inline"] == spec.inline, spec.name
            assert row["passthrough"] == spec.passthrough, spec.name
