"""Wire v2 end to end: negotiation, equivalence, pipelining, fuzz.

Three pillars:

- **Negotiation** — a v2 client against a default server upgrades; a
  v1 client against the same server, and any client against a server
  pinned to ``accept_wire=1``, keep speaking JSON lines; a strict
  ``wire_protocol="v2"`` client fails loudly against a pinned server.
- **Cross-protocol equivalence** — the same session driven over v1,
  over v2, and over v2 through a 4-shard supervisor (pass-through
  routing, with a mid-run migrate) yields bit-identical F(t) series,
  cost snapshots, and finalize results.
- **Malformed-frame fuzz** — truncated headers, bad magic, bad
  versions, oversize lengths, length/shape mismatches and non-finite
  payloads each draw a clean ``WireError`` response (or error frame)
  and never hang the connection; recoverable content errors leave the
  connection serving.

Real sockets, real worker processes — nothing is mocked.
"""

import asyncio
import json
import struct

import numpy as np
import pytest

from repro.service import (
    AsyncServiceClient,
    MonitoringServer,
    ServiceError,
    ShardedMonitoringServer,
    wire,
)
from repro.streams import registry

T, N, K, EPS = 360, 16, 3, 0.15
BLOCK = 60


def blocks_for(index: int):
    source = registry.stream("zipf", T, N, block_size=BLOCK, rng=21 + index)
    return list(source.iter_blocks())


def spec(index: int) -> dict:
    return dict(algorithm="approx-monitor", n=N, k=K, eps=EPS, seed=5 + index)


def payload(response: dict) -> dict:
    """A response minus its connection-local envelope (request id, ok)."""
    return {k: v for k, v in response.items() if k not in ("id", "ok")}


async def _served(server, wire_protocol):
    host, port = await server.start()
    client = await AsyncServiceClient.connect(
        host, port, wire_protocol=wire_protocol
    )
    return client


class TestNegotiation:
    def test_v2_client_upgrades_on_default_server(self):
        async def scenario():
            server = MonitoringServer()
            client = await _served(server, "v2")
            try:
                assert client.wire_version == wire.WIRE_V2
                pong = await client.ping()
                assert pong["pong"] is True and pong["accept_wire"] == 2
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())

    def test_v1_client_unchanged_on_v2_default_server(self):
        """The interop guarantee: a client that never says hello keeps
        speaking JSON lines against a v2-default server."""

        async def scenario():
            server = MonitoringServer()
            client = await _served(server, "v1")
            try:
                assert client.wire_version == wire.WIRE_V1
                sid = await client.create_session(**spec(0))
                ack = await client.feed(sid, blocks_for(0)[0])
                assert ack["step"] == BLOCK
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())

    def test_auto_falls_back_on_pinned_server(self):
        async def scenario():
            server = MonitoringServer(accept_wire=wire.WIRE_V1)
            client = await _served(server, "auto")
            try:
                assert client.wire_version == wire.WIRE_V1
                assert (await client.ping())["accept_wire"] == 1
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())

    def test_auto_falls_back_on_server_without_hello(self):
        """A server predating the hello op rejects it as unknown; auto
        mode treats that as 'v1 only' instead of failing the connect."""

        class PreHelloServer(MonitoringServer):
            _OPS = {
                op: handler
                for op, handler in MonitoringServer._OPS.items()
                if op != "hello"
            }

        async def scenario():
            server = PreHelloServer()
            client = await _served(server, "auto")
            try:
                assert client.wire_version == wire.WIRE_V1
                assert (await client.ping())["pong"] is True
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())

    def test_strict_v2_fails_loudly_on_pinned_server(self):
        async def scenario():
            server = MonitoringServer(accept_wire=wire.WIRE_V1)
            host, port = await server.start()
            try:
                with pytest.raises(ServiceError, match="only grants wire v1"):
                    await AsyncServiceClient.connect(host, port, wire_protocol="v2")
            finally:
                await server.aclose()

        asyncio.run(scenario())

    def test_pinned_supervisor_pins_its_workers(self):
        async def scenario():
            server = ShardedMonitoringServer(shards=1, accept_wire=wire.WIRE_V1)
            client = await _served(server, "auto")
            try:
                assert client.wire_version == wire.WIRE_V1
                # The whole topology still serves sessions.
                sid = await client.create_session(**spec(0))
                ack = await client.feed(sid, blocks_for(0)[0])
                assert ack["step"] == BLOCK
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())


async def _drive_transcript(server, wire_protocol, *, migrate_after=None):
    """Create two sessions, feed all blocks, record every observable.

    The same shape as tests/service/test_shard.py's transcript, with a
    snapshot/restore pair thrown in so checkpoint transport is part of
    the equivalence law.
    """
    client = await _served(server, wire_protocol)
    try:
        sids = [await client.create_session(**spec(i)) for i in range(2)]
        data = [blocks_for(i) for i in range(2)]
        transcript = []
        for block_index in range(len(data[0])):
            for sid, blocks in zip(sids, data):
                await client.feed(sid, blocks[block_index])
                status = await client.query(sid)
                transcript.append(
                    (status["step"], status["messages"], tuple(status["output"]))
                )
            if block_index == migrate_after:
                await client.migrate(sids[0])
        # Checkpoint round trip: the twin continues bit-identically, so
        # its final status folds into the transcript.
        blob = await client.snapshot(sids[0])
        twin = await client.restore(blob)
        twin_status = await client.query(twin)
        transcript.append(
            (twin_status["step"], twin_status["messages"],
             tuple(twin_status["output"]))
        )
        await client.close_session(twin)
        costs = [
            {k: v for k, v in payload(await client.cost(sid)).items()
             if k != "session"}
            for sid in sids
        ]
        results = [await client.finalize(sid) for sid in sids]
        return transcript, costs, results
    finally:
        await client.aclose()
        await server.aclose()


class TestCrossProtocolEquivalence:
    def test_v1_v2_and_sharded_v2_are_bit_identical(self):
        """One session history, four transports — v1 lines, v2 frames,
        pipelined v2, and v2 through a 4-shard supervisor's pass-through
        path with a mid-run migration — all indistinguishable."""
        v1 = asyncio.run(_drive_transcript(MonitoringServer(), "v1"))
        v2 = asyncio.run(_drive_transcript(MonitoringServer(), "v2"))
        sharded = asyncio.run(
            _drive_transcript(
                ShardedMonitoringServer(shards=4), "v2", migrate_after=2
            )
        )
        assert v2 == v1
        assert sharded == v1

    def test_pipelined_feeds_match_lockstep(self):
        """Windowed in-flight feeds with a flush barrier produce the
        same session state as lockstep request-response."""

        async def pipelined():
            server = MonitoringServer()
            client = await _served(server, "v2")
            try:
                sid = await client.create_session(**spec(0))
                for block in blocks_for(0):
                    await client.feed_nowait(sid, block)
                await client.flush()
                status = await client.query(sid)
                result = await client.finalize(sid)
                return payload(status), result
            finally:
                await client.aclose()
                await server.aclose()

        async def lockstep():
            server = MonitoringServer()
            client = await _served(server, "v1")
            try:
                sid = await client.create_session(**spec(0))
                for block in blocks_for(0):
                    await client.feed(sid, block)
                status = await client.query(sid)
                result = await client.finalize(sid)
                return payload(status), result
            finally:
                await client.aclose()
                await server.aclose()

        assert asyncio.run(pipelined()) == asyncio.run(lockstep())


class TestPipelining:
    def test_query_observes_every_prior_feed(self):
        """Any op is an implicit barrier: a query right after queued
        feeds reflects all of them."""

        async def scenario():
            server = MonitoringServer()
            client = await _served(server, "v2")
            try:
                sid = await client.create_session(**spec(0))
                blocks = blocks_for(0)
                for block in blocks:
                    await client.feed_nowait(sid, block)
                status = await client.query(sid)  # no explicit flush
                assert status["step"] == T
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())

    def test_pipeline_error_surfaces_at_flush(self):
        async def scenario():
            server = MonitoringServer()
            client = await _served(server, "v2")
            try:
                sid = await client.create_session(**spec(0))
                block = blocks_for(0)[0]
                await client.feed_nowait(sid, block)
                # Wrong width: the engine rejects it server-side.
                await client.feed_nowait(sid, np.ones((4, N + 3)))
                await client.feed_nowait(sid, block)
                with pytest.raises(ServiceError, match="shape"):
                    await client.flush()
                # The error is consumed; the connection keeps serving
                # and the two good blocks landed.
                assert (await client.query(sid))["step"] == 2 * BLOCK
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())

    def test_client_side_encode_failure_leaves_no_ghost_ack(self):
        """A batch the codec itself rejects (3-D) raises immediately and
        must not leave a pending entry — the next barrier would
        otherwise wait forever for an ack that was never requested."""

        async def scenario():
            server = MonitoringServer()
            client = await _served(server, "v2")
            try:
                sid = await client.create_session(**spec(0))
                block = blocks_for(0)[0]
                await client.feed_nowait(sid, block)
                with pytest.raises(wire.WireError, match="batch"):
                    await client.feed_nowait(sid, np.zeros((2, 2, N)))
                await client.feed_nowait(sid, block)
                await asyncio.wait_for(client.flush(), timeout=10)
                assert (await client.query(sid))["step"] == 2 * BLOCK
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())

    def test_window_bounds_in_flight_feeds(self):
        async def scenario():
            server = MonitoringServer()
            host, port = await server.start()
            client = await AsyncServiceClient.connect(
                host, port, wire_protocol="v2", window=2
            )
            try:
                sid = await client.create_session(**spec(0))
                for block in blocks_for(0):
                    await client.feed_nowait(sid, block)
                    assert len(client._pending) <= 2
                await client.flush()
                assert (await client.query(sid))["step"] == T
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())


async def _raw_v2_connection(host, port):
    """A socket upgraded to v2 by hand (no client machinery)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(wire.encode_line({"id": 1, "op": "hello", "wire": 2}))
    await writer.drain()
    granted = json.loads(await reader.readline())
    assert granted["ok"] and granted["wire"] == 2
    return reader, writer


async def _read_error_frame(reader):
    frame = await asyncio.wait_for(wire.read_frame(reader), timeout=10)
    assert frame is not None
    header, meta, _payload = frame
    assert header.response and header.code != wire.STATUS_OK
    return json.loads(meta)


class TestMalformedFrames:
    """Every fuzz case must answer (or close) within the timeout —
    a hung connection fails the test by timing out."""

    def _scenario(self, fuzz):
        async def run():
            server = MonitoringServer()
            host, port = await server.start()
            try:
                return await asyncio.wait_for(fuzz(server, host, port), timeout=30)
            finally:
                await server.aclose()

        return asyncio.run(run())

    def test_garbage_instead_of_header_closes_cleanly(self):
        async def fuzz(server, host, port):
            reader, writer = await _raw_v2_connection(host, port)
            writer.write(b"{not a frame\n")
            await writer.drain()
            error = await _read_error_frame(reader)
            assert error["error_type"] == "WireError"
            assert "magic" in error["error"]
            assert await reader.read() == b""  # server closed: no resync
            writer.close()

        self._scenario(fuzz)

    def test_truncated_header_then_eof_does_not_hang(self):
        async def fuzz(server, host, port):
            reader, writer = await _raw_v2_connection(host, port)
            writer.write(wire.MAGIC + b"\x02\x01")  # 4 of 30 header bytes
            await writer.drain()
            writer.close()  # EOF mid-header
            # The server notices the truncation, answers/closes instead
            # of parking the reader, and keeps serving new connections.
            await asyncio.wait_for(reader.read(), timeout=10)
            pong = await _probe_alive(host, port)
            assert pong["pong"] is True

        self._scenario(fuzz)

    def test_wrong_version_rejected(self):
        async def fuzz(server, host, port):
            reader, writer = await _raw_v2_connection(host, port)
            bad = bytearray(
                wire.pack_header(kind=wire.KIND_NONE, code=wire.OP_CODES["ping"],
                                 request_id=1, session=0, meta_len=0, payload_len=0)
            )
            bad[2] = 9  # version byte
            writer.write(bytes(bad))
            await writer.drain()
            error = await _read_error_frame(reader)
            assert "version" in error["error"]
            writer.close()

        self._scenario(fuzz)

    def test_oversize_lengths_rejected(self):
        async def fuzz(server, host, port):
            reader, writer = await _raw_v2_connection(host, port)
            writer.write(
                struct.pack(
                    "<2sBBHQQII", wire.MAGIC, 2, wire.KIND_NONE,
                    wire.OP_CODES["ping"], 1, 0, 0, wire.MAX_PAYLOAD_BYTES + 1,
                )
            )
            await writer.drain()
            error = await _read_error_frame(reader)
            assert "cap" in error["error"]
            writer.close()

        self._scenario(fuzz)

    def test_payload_shape_mismatch_is_recoverable(self):
        """A well-framed but wrong-length values payload errors the one
        request; the connection keeps serving."""

        async def fuzz(server, host, port):
            reader, writer = await _raw_v2_connection(host, port)
            meta = json.dumps({"shape": [2, 4]}).encode()
            payload = b"\x00" * 24  # 24 bytes, shape needs 64
            writer.write(
                wire.pack_header(
                    kind=wire.KIND_VALUES, code=wire.OP_CODES["feed"],
                    request_id=5, session=1, meta_len=len(meta),
                    payload_len=len(payload),
                ) + meta + payload
            )
            await writer.drain()
            error = await _read_error_frame(reader)
            assert error["error_type"] == "WireError"
            # same connection, next request answers fine
            writer.write(wire.encode_frame({"id": 6, "op": "ping"}))
            await writer.drain()
            frame = await asyncio.wait_for(wire.read_frame(reader), timeout=10)
            assert frame[0].code == wire.STATUS_OK
            writer.close()

        self._scenario(fuzz)

    def test_non_finite_payload_rejected_cleanly(self):
        async def fuzz(server, host, port):
            client = await AsyncServiceClient.connect(host, port, wire_protocol="v2")
            try:
                sid = await client.create_session(**spec(0))
                bad = np.full((2, N), np.nan)
                with pytest.raises((ServiceError, wire.WireError),
                                   match="non-finite"):
                    await client.feed(sid, bad)
                # the connection survives a rejected batch
                assert (await client.query(sid))["step"] == 0
            finally:
                await client.aclose()

        self._scenario(fuzz)

    def test_link_survives_encode_rejected_batches(self):
        """A v1 client's bad batch fails at the supervisor→worker link
        *encode* (nothing written): the pooled link must stay in sync
        and re-pool healthy, not force a reconnect per bad request."""

        async def run():
            # One pooled link: every forwarded op shares it, so the
            # worker's connection count moves iff a link gets poisoned.
            server = ShardedMonitoringServer(shards=1, links_per_shard=1)
            host, port = await server.start()
            client = await AsyncServiceClient.connect(host, port, wire_protocol="v1")
            try:
                sid = await client.create_session(**spec(0))
                good = blocks_for(0)[0]
                await client.feed(sid, good)
                before = (await client.ping())["shard_info"][0]["stats"]["connections"]
                bad = wire.encode_values(np.full((2, N), np.nan), "b64")
                for _ in range(3):
                    with pytest.raises(ServiceError, match="non-finite"):
                        await client.request("feed", session=sid, values=bad)
                after = (await client.ping())["shard_info"][0]["stats"]["connections"]
                assert after == before  # no link was poisoned/reconnected
                await client.feed(sid, good)  # and the link still serves
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(asyncio.wait_for(run(), timeout=120))

    def test_sharded_passthrough_fuzz(self):
        """Malformed session frames against the supervisor's splice
        path fail closed without decoding (unknown session) and without
        wedging the route."""

        async def run():
            server = ShardedMonitoringServer(shards=1)
            host, port = await server.start()
            try:
                reader, writer = await _raw_v2_connection(host, port)
                # pass-through op for a session that does not exist
                writer.write(
                    wire.pack_header(
                        kind=wire.KIND_NONE, code=wire.OP_CODES["query"],
                        request_id=9, session=777, meta_len=0, payload_len=0,
                    )
                )
                await writer.drain()
                error = await asyncio.wait_for(
                    _read_error_frame(reader), timeout=10
                )
                assert "no such session" in error["error"]
                writer.close()
                # the supervisor still serves new clients
                client = await AsyncServiceClient.connect(
                    host, port, wire_protocol="v2"
                )
                try:
                    sid = await client.create_session(**spec(0))
                    ack = await client.feed(sid, blocks_for(0)[0])
                    assert ack["step"] == BLOCK
                finally:
                    await client.aclose()
            finally:
                await server.aclose()

        asyncio.run(asyncio.wait_for(run(), timeout=120))


async def _probe_alive(host, port):
    client = await AsyncServiceClient.connect(host, port, wire_protocol="v1")
    try:
        return await client.ping()
    finally:
        await client.aclose()
