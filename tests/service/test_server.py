"""The asyncio server: op coverage, concurrency, error envelope.

Written against a real TCP socket on localhost (no mocks): every test
starts a fresh in-process server on an OS-assigned port and talks to it
through the client library.  Plain ``asyncio.run`` keeps the suite free
of plugin dependencies.
"""

import asyncio

import numpy as np
import pytest

from repro.model.engine import MonitoringEngine
from repro.service import AsyncServiceClient, MonitoringServer, ServiceError, wire
from repro.service.algorithms import make_algorithm
from repro.streams import registry

T, N, K, EPS = 400, 12, 3, 0.15


def served(coro_fn):
    """Run ``coro_fn(server, client)`` against a fresh server."""

    async def scaffold():
        server = MonitoringServer()
        host, port = await server.start()
        client = await AsyncServiceClient.connect(host, port)
        try:
            return await coro_fn(server, client)
        finally:
            await client.aclose()
            await server.aclose()

    return asyncio.run(scaffold())


@pytest.fixture(scope="module")
def reference():
    source = registry.stream("zipf", T, N, block_size=50, rng=13)
    result = MonitoringEngine(
        source, make_algorithm("approx-monitor", K, EPS),
        k=K, eps=EPS, seed=3, record_outputs=False,
    ).run()
    return result, list(source.iter_blocks())


def spec(**overrides):
    base = dict(algorithm="approx-monitor", n=N, k=K, eps=EPS, seed=3)
    base.update(overrides)
    return base


class TestBasicOps:
    def test_ping(self):
        async def scenario(server, client):
            pong = await client.ping()
            assert pong["pong"] is True
            assert pong["sessions"] == 0
            assert pong["version"] >= 1

        served(scenario)

    def test_create_feed_query_finalize(self, reference):
        ref, blocks = reference

        async def scenario(server, client):
            sid = await client.create_session(**spec())
            for block in blocks:
                ack = await client.feed(sid, block)
            assert ack["step"] == T
            status = await client.query(sid)
            assert status["step"] == T
            assert len(status["output"]) == K
            cost = await client.cost(sid)
            assert cost["messages"] == ref.messages
            assert cost["by_scope"] == ref.ledger.by_scope()
            result = await client.finalize(sid)
            assert result["messages"] == ref.messages
            assert result["num_steps"] == T
            # finalize removes the session
            assert await client.list_sessions() == []

        served(scenario)

    def test_json_encoding_parity(self, reference):
        ref, blocks = reference

        async def scenario(server, client):
            sid = await client.create_session(**spec())
            for block in blocks:
                await client.feed(sid, block, encoding="json")
            result = await client.finalize(sid)
            assert result["messages"] == ref.messages

        served(scenario)

    def test_workload_backed_advance(self, reference):
        ref, _blocks = reference

        async def scenario(server, client):
            sid = await client.create_session(**spec(
                workload="zipf", num_steps=T, block_size=50, workload_seed=13,
            ))
            ack = await client.advance(sid, 150)
            assert ack["step"] == 150 and not ack["done"]
            ack = await client.advance(sid)
            assert ack["step"] == T and ack["done"]
            result = await client.finalize(sid)
            assert result["messages"] == ref.messages

        served(scenario)

    def test_snapshot_restore_over_the_wire(self, reference):
        ref, blocks = reference

        async def scenario(server, client):
            sid = await client.create_session(**spec())
            half = len(blocks) // 2
            for block in blocks[:half]:
                await client.feed(sid, block)
            blob = await client.snapshot(sid)
            sid2 = await client.restore(blob)
            assert sid2 != sid
            for block in blocks[half:]:
                await client.feed(sid2, block)
            result = await client.finalize(sid2)
            assert result["messages"] == ref.messages

        served(scenario)

    def test_close_drops_session(self):
        async def scenario(server, client):
            sid = await client.create_session(**spec())
            await client.close_session(sid)
            with pytest.raises(ServiceError, match="no such session"):
                await client.query(sid)

        served(scenario)


class TestErrorEnvelope:
    def test_bad_create_is_a_response_not_a_crash(self):
        async def scenario(server, client):
            with pytest.raises(ServiceError) as err:
                await client.create_session(algorithm="nope", n=8, k=2)
            assert err.value.error_type == "KeyError"
            # the connection survives the error
            assert (await client.ping())["pong"]

        served(scenario)

    def test_unknown_op(self):
        """v1 sends the op and the server rejects it; v2 cannot even
        encode an op without a code — either way it's a clean error."""

        async def scenario(server, client):
            with pytest.raises((ServiceError, wire.WireError), match="unknown op"):
                await client.request("frobnicate")

        served(scenario)

    def test_unknown_session(self):
        async def scenario(server, client):
            with pytest.raises(ServiceError, match="no such session"):
                await client.feed("s999", np.ones((1, 4)))

        served(scenario)

    def test_bad_values_payload(self):
        async def scenario(server, client):
            sid = await client.create_session(**spec())
            with pytest.raises(ServiceError) as err:
                await client.request("feed", session=sid, values="garbage")
            assert err.value.error_type == "WireError"

        served(scenario)

    def test_malformed_json_line(self):
        """A bad line on a v1 connection draws the JSON error envelope
        (the v2 framing's fuzz twin lives in test_protocol_v2.py)."""

        async def scenario():
            server = MonitoringServer()
            host, port = await server.start()
            client = await AsyncServiceClient.connect(host, port, wire_protocol="v1")
            try:
                client._writer.write(b"{not json\n")
                await client._writer.drain()
                line = await client._reader.readline()
                import json
                response = json.loads(line)
                assert response["ok"] is False
                assert response["error_type"] == "WireError"
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())

    def test_session_limit(self):
        async def scenario():
            server = MonitoringServer(max_sessions=2)
            host, port = await server.start()
            client = await AsyncServiceClient.connect(host, port)
            try:
                await client.create_session(**spec())
                await client.create_session(**spec())
                with pytest.raises(ServiceError, match="session limit"):
                    await client.create_session(**spec())
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())


class TestSmallOpFastPath:
    def test_hello_reports_negotiation(self):
        async def scenario(server, client):
            response = await client.request("hello", wire=1)
            assert response["wire"] == 1  # requesting v1 never upgrades
            assert response["version"] >= 1

        served(scenario)

    def test_cheap_ops_never_touch_the_executor(self, reference):
        """INLINE_OPS are served on the event loop: no run_in_executor
        round trip.  Heavy ops (feed) still go through it."""
        _ref, blocks = reference

        async def scenario():
            server = MonitoringServer()
            host, port = await server.start()
            client = await AsyncServiceClient.connect(host, port)
            try:
                sid = await client.create_session(**spec())
                await client.feed(sid, blocks[0])

                real_run_sync, calls = server._run_sync, []

                async def tracking(fn, *args):
                    calls.append(getattr(fn, "__name__", str(fn)))
                    return await real_run_sync(fn, *args)

                server._run_sync = tracking
                try:
                    covered = {
                        "ping", "hello", "query", "cost", "list", "close",
                        "batch", "metrics", "durability",
                    }
                    # shutdown is inline too but would stop the server;
                    # everything else in the contract set must be hit
                    # here, so editing INLINE_OPS forces updating this.
                    assert covered == MonitoringServer.INLINE_OPS - {"shutdown"}
                    await client.ping()
                    await client.request("hello", wire=1)
                    await client.query(sid)
                    await client.cost(sid)
                    await client.list_sessions()
                    await client.set_batching(True)
                    await client.metrics()
                    await client.durability()
                    await client.close_session(sid)
                    assert calls == []  # every cheap op stayed on the loop
                    sid2 = await client.create_session(**spec())
                    await client.feed(sid2, blocks[0])
                    assert calls != []  # the heavy path still offloads
                finally:
                    server._run_sync = real_run_sync
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())

    def test_inline_ops_set_matches_handlers(self):
        """Every declared inline op exists; the declaration is the
        documentation the fast path is held to."""
        assert MonitoringServer.INLINE_OPS <= set(MonitoringServer._OPS)


class TestConcurrency:
    def test_concurrent_sessions_are_isolated(self, reference):
        """Interleaved clients on distinct sessions reproduce serial runs."""
        ref, blocks = reference

        async def scenario():
            server = MonitoringServer()
            host, port = await server.start()

            async def drive(seed_offset: int) -> int:
                client = await AsyncServiceClient.connect(host, port)
                try:
                    sid = await client.create_session(**spec(seed=3 + seed_offset))
                    for block in blocks:
                        await client.feed(sid, block)
                    return (await client.finalize(sid))["messages"]
                finally:
                    await client.aclose()

            totals = await asyncio.gather(*(drive(i) for i in range(4)))
            await server.aclose()
            return totals

        totals = asyncio.run(scenario())
        # seed_offset 0 is the reference run; all runs consumed the same data
        assert totals[0] == ref.messages
        assert all(t > 0 for t in totals)

    def test_shutdown_op_stops_serve_loop(self):
        async def scenario():
            server = MonitoringServer()
            host, port = await server.start()
            serve_task = asyncio.create_task(server.serve_until_shutdown())
            client = await AsyncServiceClient.connect(host, port)
            response = await client.request("shutdown")
            assert response["stopping"] is True
            await asyncio.wait_for(serve_task, timeout=5)
            await client.aclose()

        asyncio.run(scenario())

    def test_shutdown_with_idle_connection_does_not_hang(self):
        """An idle connection parks its handler in readline(); shutdown
        must cancel it instead of waiting (wait_closed blocks on open
        handlers since Python 3.12.1)."""

        async def scenario():
            server = MonitoringServer()
            host, port = await server.start()
            serve_task = asyncio.create_task(server.serve_until_shutdown())
            idle = await AsyncServiceClient.connect(host, port)
            await idle.ping()  # the connection is live, then goes quiet
            shutter = await AsyncServiceClient.connect(host, port)
            await shutter.request("shutdown")
            await asyncio.wait_for(serve_task, timeout=5)
            await shutter.aclose()
            await idle.aclose()

        asyncio.run(scenario())
