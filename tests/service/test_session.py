"""Sessions: parity with run(), checkpoint/resume, config validation."""

import pickle

import numpy as np
import pytest

from repro.model.engine import MonitoringEngine
from repro.service import Session, SessionConfig, SnapshotError
from repro.service import algorithms
from repro.service.algorithms import AlgorithmParamError, make_algorithm
from repro.service.session import session_from_wire
from repro.streams import registry

T, N, K, EPS = 600, 16, 3, 0.15


@pytest.fixture(scope="module")
def reference():
    """In-process run() on the exact stream the sessions will see."""
    source = registry.stream("zipf", T, N, block_size=64, rng=21)
    result = MonitoringEngine(
        source, make_algorithm("approx-monitor", K, EPS),
        k=K, eps=EPS, seed=5, record_outputs=True,
    ).run()
    blocks = list(source.iter_blocks())
    return result, blocks


def push_config(**overrides):
    base = dict(
        algorithm="approx-monitor", n=N, k=K, eps=EPS, seed=5, record_outputs=True
    )
    base.update(overrides)
    return SessionConfig(**base)


def workload_config(**overrides):
    return push_config(
        workload="zipf", num_steps=T, block_size=64, workload_seed=21, **overrides
    )


def assert_same_result(a, b):
    assert a.messages == b.messages
    assert a.num_steps == b.num_steps
    assert a.output_changes == b.output_changes
    assert a.outputs == b.outputs
    assert a.ledger.per_step == b.ledger.per_step


class TestPushMode:
    def test_block_by_block_matches_run(self, reference):
        ref, blocks = reference
        session = Session(push_config())
        for block in blocks:
            session.feed(block)
        assert_same_result(session.finalize(), ref)

    def test_queries_track_the_run(self, reference):
        _ref, blocks = reference
        session = Session(push_config())
        assert session.step == 0
        assert session.output() is None
        session.feed(blocks[0])
        status = session.status()
        assert status["step"] == blocks[0].shape[0]
        assert len(status["output"]) == K
        assert status["messages"] == session.cost().messages
        assert isinstance(session.bill(), dict)
        assert not session.done  # push mode is open-ended

    def test_feed_after_finalize_rejected(self, reference):
        _ref, blocks = reference
        session = Session(push_config())
        session.feed(blocks[0])
        session.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            session.feed(blocks[1])
        # finalize is idempotent
        assert session.finalize().num_steps == blocks[0].shape[0]

    def test_advance_on_push_session_rejected(self, reference):
        session = Session(push_config())
        with pytest.raises(RuntimeError, match="feed"):
            session.advance(10)


class TestWorkloadMode:
    def test_advance_to_horizon_matches_run(self, reference):
        ref, _blocks = reference
        session = Session(workload_config())
        session.advance()
        assert session.done
        assert_same_result(session.finalize(), ref)

    def test_uneven_advance_steps_match(self, reference):
        ref, _blocks = reference
        session = Session(workload_config())
        for steps in (1, 37, 100, None):  # cuts inside and across blocks
            session.advance(steps)
        assert_same_result(session.finalize(), ref)

    def test_advance_past_horizon_is_noop(self):
        session = Session(workload_config())
        session.advance()
        assert session.advance(50) == T

    def test_feed_on_workload_session_rejected(self):
        session = Session(workload_config())
        with pytest.raises(RuntimeError, match="advance"):
            session.feed(np.ones((1, N)))

    def test_bad_workload_params_fail_at_create(self):
        with pytest.raises(registry.WorkloadParamError):
            Session(workload_config(workload_params={"alpha": -1.0}))

    def test_non_streamable_workload_rejected(self):
        with pytest.raises(ValueError, match="not block-streamable"):
            Session(push_config(workload="levels", num_steps=100))


class TestCheckpointRestore:
    @pytest.mark.parametrize("cut", [1, 100, 599])
    def test_push_mode_resume_is_bit_identical(self, reference, cut):
        ref, blocks = reference
        session = Session(push_config())
        fed = 0
        blob = None
        for block in blocks:
            if blob is None and fed + block.shape[0] > cut:
                split = cut - fed
                session.feed(block[:split])
                blob = session.snapshot()
                session = Session.restore(blob)
                session.feed(block[split:])
            else:
                session.feed(block)
            fed += block.shape[0]
        assert blob is not None
        assert_same_result(session.finalize(), ref)

    def test_workload_mode_resume_is_bit_identical(self, reference):
        ref, _blocks = reference
        session = Session(workload_config())
        session.advance(123)  # cuts inside a generator block
        resumed = Session.restore(session.snapshot())
        assert resumed.step == 123
        resumed.advance()
        assert_same_result(resumed.finalize(), ref)

    def test_snapshot_after_finalize_rejected(self, reference):
        _ref, blocks = reference
        session = Session(push_config())
        session.feed(blocks[0])
        session.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            session.snapshot()

    def test_restore_rejects_garbage(self):
        with pytest.raises(SnapshotError, match="unreadable"):
            Session.restore(b"not a checkpoint")

    def test_restore_rejects_wrong_format(self):
        blob = pickle.dumps({"format": 999})
        with pytest.raises(SnapshotError, match="format"):
            Session.restore(blob)

    def test_restore_rejects_untrusted_callables(self):
        # A classic pickle gadget: os.system via reduce.
        class Evil:
            def __reduce__(self):
                import os
                return (os.system, ("true",))

        blob = pickle.dumps({"format": 1, "config": {}, "engine": Evil()})
        with pytest.raises(SnapshotError, match="outside the trusted"):
            Session.restore(blob)

    def test_restore_rejects_trusted_module_functions(self):
        # Module-level *functions* inside numpy/repro are callable gadgets
        # too (file writers, savers); only classes and the explicit
        # reconstructor allowlist may load.
        class SaverGadget:
            def __reduce__(self):
                import numpy
                return (numpy.save, ("/tmp/pwned.npy", [1]))

        blob = pickle.dumps({"format": 1, "config": {}, "engine": SaverGadget()})
        with pytest.raises(SnapshotError, match="callable"):
            Session.restore(blob)

    @pytest.mark.parametrize("slug", algorithms.available())
    def test_every_algorithm_checkpoints_and_resumes(self, slug):
        """The unpickler allowlist must cover each algorithm's object
        graph — a new monitor that pickles an unlisted function should
        fail here, not in production restore."""
        spec = algorithms.get(slug)
        eps = 0.2 if spec.uses_eps else 0.0
        config = SessionConfig(algorithm=slug, n=8, k=2, eps=eps, seed=6)
        rng = np.random.default_rng(3)
        blocks = [np.round(rng.uniform(10, 500, size=(15, 8))) for _ in range(2)]

        full = Session(config)
        for block in blocks:
            full.feed(block)
        want = full.finalize().messages

        session = Session(config)
        session.feed(blocks[0])
        resumed = Session.restore(session.snapshot())
        resumed.feed(blocks[1])
        assert resumed.finalize().messages == want


class TestConfigValidation:
    def test_wire_spec_round_trip(self):
        session = session_from_wire(
            {"algorithm": "send-always", "n": 8, "k": 2, "seed": 1}
        )
        session.feed(np.ones((3, 8)))
        assert session.step == 3

    def test_wire_spec_unknown_key(self):
        with pytest.raises(ValueError, match="unknown session fields"):
            session_from_wire({"algorithm": "send-always", "n": 8, "k": 2, "nope": 1})

    def test_bad_k(self):
        with pytest.raises(ValueError, match="out of range"):
            SessionConfig(algorithm="send-always", n=4, k=5)

    def test_workload_needs_horizon(self):
        with pytest.raises(ValueError, match="num_steps"):
            SessionConfig(algorithm="send-always", n=4, k=2, workload="zipf")

    def test_eps_rules(self):
        with pytest.raises(AlgorithmParamError, match="eps"):
            Session(SessionConfig(algorithm="approx-monitor", n=8, k=2))  # missing eps
        with pytest.raises(AlgorithmParamError, match="exact"):
            Session(SessionConfig(algorithm="exact-cor3.3", n=8, k=2, eps=0.1))

    def test_unknown_algorithm_param(self):
        with pytest.raises(AlgorithmParamError, match="unknown params"):
            Session(SessionConfig(
                algorithm="approx-monitor", n=8, k=2, eps=0.1,
                algorithm_params={"warp": 9},
            ))
