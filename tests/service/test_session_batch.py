"""The cohort law at the service layer: batched sessions ≡ serial twins.

Three tiers of the same law:

1. :class:`~repro.service.session.SessionBatch` — membership rules and
   ``feed_batch`` ticks at S = 1, 16 and 257 (one non-batchable
   straggler forcing the serial fallback inside a tick), compared
   against serially-fed twin sessions on ``F(t)``, the cost snapshot
   and the checkpoint **bytes**.
2. The server's cross-connection coalescing — concurrent feeds from
   many connections land in vectorized ticks (``batched_ticks`` > 0)
   yet answer exactly what the in-process oracle answers.
3. The ``batch`` wire op — runtime toggle, observables unmoved.

The sharded topology is covered by the stateful fuzz tier and the
supervisor fan-out test in tests/service/test_shard.py idiom; here the
1-shard case rides the same scenario via a parametrized topology.
"""

import asyncio

import numpy as np
import pytest

from repro.service.client import AsyncServiceClient
from repro.service.server import MonitoringServer
from repro.service.session import Session, SessionBatch, session_from_wire
from repro.service.shard import ShardedMonitoringServer

N, K, EPS = 6, 2, 0.25

SPECS = [
    pytest.param({"algorithm": "approx-monitor", "n": N, "k": K, "eps": EPS}, id="approx"),
    pytest.param({"algorithm": "exact-cor3.3", "n": N, "k": K}, id="exact"),
    pytest.param({"algorithm": "topk-protocol", "n": N, "k": K, "eps": EPS}, id="topk"),
]


def make_session(spec, seed):
    return session_from_wire({**spec, "seed": seed})


def walk_blocks(T, S, n=N, seed=0, jump_every=9):
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(0, 0.5, size=(T, S, n)), axis=0) + 50.0
    jumps = rng.uniform(20, 60, size=(T, S, n)) * (rng.random((T, S, n)) < 1 / jump_every)
    data = np.abs(base + jumps)
    return [np.ascontiguousarray(data[:, i, :]) for i in range(S)]


def assert_twin(batched: Session, serial: Session):
    assert batched.step == serial.step
    assert batched.messages == serial.messages
    assert batched.output() == serial.output()
    assert batched.cost() == serial.cost()
    assert batched.bill() == serial.bill()
    assert batched.snapshot() == serial.snapshot()  # raw checkpoint bytes


class TestMembership:
    def test_join_requires_matching_cohort(self):
        a = make_session({"algorithm": "approx-monitor", "n": 4, "k": 1, "eps": 0.2}, 1)
        b = make_session({"algorithm": "approx-monitor", "n": 6, "k": 1, "eps": 0.2}, 1)
        batch = SessionBatch(a.cohort_key)
        batch.join(a)
        batch.join(a)  # idempotent
        assert len(batch) == 1
        with pytest.raises(ValueError, match="cohort"):
            batch.join(b)
        batch.leave(a)
        batch.leave(a)  # idempotent, and safe for never-joined sessions
        batch.leave(b)
        assert len(batch) == 0

    def test_workload_sessions_are_not_batchable(self):
        s = make_session(
            {
                "algorithm": "approx-monitor", "n": 4, "k": 1, "eps": 0.2,
                "workload": "zipf", "num_steps": 16, "block_size": 8,
            },
            1,
        )
        assert not s.batchable

    def test_finalized_sessions_are_not_batchable(self):
        s = make_session({"algorithm": "approx-monitor", "n": 4, "k": 1, "eps": 0.2}, 1)
        assert s.batchable
        s.finalize()
        assert not s.batchable


class TestCohortLaw:
    @pytest.mark.parametrize("spec", SPECS)
    @pytest.mark.parametrize("S", [1, 16])
    def test_bit_identical_to_serial_twins(self, spec, S):
        T = 48
        blocks = walk_blocks(T, S, seed=5)
        batched = [make_session(spec, seed=i) for i in range(S)]
        serial = [make_session(spec, seed=i) for i in range(S)]
        batch = SessionBatch(batched[0].cohort_key)
        for s in batched:
            batch.join(s)
        # Two ticks so the second starts from already-advanced state.
        for lo, hi in ((0, T // 2), (T // 2, T)):
            results = batch.feed_batch([(s, b[lo:hi]) for s, b in zip(batched, blocks)])
            for s, twin, block, result in zip(batched, serial, blocks, results):
                step = twin.feed(block[lo:hi].copy())
                assert result == (step, twin.messages)
        for got, want in zip(batched, serial):
            assert_twin(got, want)
        for got, want in zip(batched, serial):
            a, b = got.finalize(), want.finalize()
            assert a.messages == b.messages
            assert a.output_changes == b.output_changes
        assert batch.ticks >= (2 if S > 1 else 0)
        assert batch.batched_steps == (S * T if S > 1 else 0)

    def test_s257_with_straggler_fallback(self):
        """256 batchable members + one opt-out algorithm in the same tick."""
        S, T = 256, 8
        spec = {"algorithm": "approx-monitor", "n": 4, "k": 1, "eps": 0.2}
        straggler_spec = {"algorithm": "send-always", "n": 4, "k": 1}
        blocks = walk_blocks(T, S + 1, n=4, seed=9)
        batched = [make_session(spec, seed=i) for i in range(S)]
        batched.append(make_session(straggler_spec, seed=0))
        serial = [make_session(spec, seed=i) for i in range(S)]
        serial.append(make_session(straggler_spec, seed=0))
        assert not batched[-1].batchable  # forces the serial fallback path
        batch = SessionBatch(batched[0].cohort_key)
        results = batch.feed_batch(list(zip(batched, blocks)))
        for twin, block, result in zip(serial, blocks, results):
            step = twin.feed(block.copy())
            assert result == (step, twin.messages)
        for got, want in zip(batched, serial):
            assert_twin(got, want)
        assert batch.batched_steps == S * T  # the straggler never batched

    def test_unequal_block_lengths_segment(self):
        spec = {"algorithm": "approx-monitor", "n": 4, "k": 1, "eps": 0.2}
        lengths = (37, 13, 1, 0)
        blocks = [b[:t] for b, t in zip(walk_blocks(40, 4, n=4, seed=2), lengths)]
        batched = [make_session(spec, seed=i) for i in range(4)]
        serial = [make_session(spec, seed=i) for i in range(4)]
        batch = SessionBatch(batched[0].cohort_key)
        results = batch.feed_batch(list(zip(batched, blocks)))
        for twin, block, result in zip(serial, blocks, results):
            step = twin.feed(block.copy())
            assert result == (step, twin.messages)
        for got, want in zip(batched, serial):
            assert_twin(got, want)

    def test_finalized_member_surfaces_serial_error(self):
        spec = {"algorithm": "approx-monitor", "n": 4, "k": 1, "eps": 0.2}
        blocks = walk_blocks(6, 2, n=4, seed=4)
        alive, dead = make_session(spec, seed=0), make_session(spec, seed=1)
        twin = make_session(spec, seed=0)
        dead.finalize()
        batch = SessionBatch(alive.cohort_key)
        results = batch.feed_batch([(alive, blocks[0]), (dead, blocks[1])])
        step = twin.feed(blocks[0].copy())
        assert results[0] == (step, twin.messages)
        assert isinstance(results[1], RuntimeError)  # "already finalized"
        assert_twin(alive, twin)


def _drive_topology(shards: int):
    """Concurrent per-connection feeds vs serially-fed oracle sessions."""
    spec = {"algorithm": "approx-monitor", "n": N, "k": K, "eps": EPS, "seed": 17}
    S, T, CHUNK = 8, 40, 20
    blocks = walk_blocks(T, S, seed=21)

    async def scenario():
        if shards:
            server: MonitoringServer = ShardedMonitoringServer(shards=shards)
        else:
            server = MonitoringServer()
        await server.start()
        try:

            async def drive(i):
                client = await AsyncServiceClient.connect(server.host, server.port)
                try:
                    sid = (await client.request("create", spec=dict(spec)))["session"]
                    last = None
                    for lo in range(0, T, CHUNK):
                        last = await client.feed(sid, blocks[i][lo : lo + CHUNK])
                    blob = await client.snapshot(sid)
                    final = await client.finalize(sid)
                    return last, blob, final
                finally:
                    await client.aclose()

            results = await asyncio.gather(*(drive(i) for i in range(S)))
            stats = dict(getattr(server, "stats", {}))
            return results, stats
        finally:
            await server.aclose()

    results, stats = asyncio.run(scenario())
    for i, (last, blob, final) in enumerate(results):
        oracle = session_from_wire(dict(spec))
        oracle.feed(blocks[i].copy())
        assert (last["step"], last["messages"]) == (oracle.step, oracle.messages)
        assert blob == oracle.snapshot()  # checkpoint bytes, the strong form
        expected = oracle.finalize()
        assert final["messages"] == expected.messages
        assert final["output_changes"] == expected.output_changes
    return stats


class TestServerCoalescing:
    def test_inproc_coalesces_and_stays_bit_identical(self):
        stats = _drive_topology(shards=0)
        assert stats["batched_ticks"] > 0
        assert stats["batched_steps"] > 0

    def test_one_shard_topology_stays_bit_identical(self):
        # The supervisor passes feeds through; its workers batch
        # internally, so the front-end stats stay at zero here.
        _drive_topology(shards=1)

    def test_toggle_disables_coalescing(self):
        spec = {"algorithm": "approx-monitor", "n": N, "k": K, "eps": EPS, "seed": 23}
        blocks = walk_blocks(12, 4, seed=29)

        async def scenario(server, client):
            response = await client.set_batching(False)
            assert response["batching"] is False

            async def drive(i):
                conn = await AsyncServiceClient.connect(server.host, server.port)
                try:
                    sid = (await conn.request("create", spec=dict(spec)))["session"]
                    return await conn.feed(sid, blocks[i])
                finally:
                    await conn.aclose()

            results = await asyncio.gather(*(drive(i) for i in range(4)))
            assert server.stats["batched_ticks"] == 0
            response = await client.set_batching(True)
            assert response["batching"] is True
            return results

        async def scaffold():
            server = MonitoringServer()
            await server.start()
            client = await AsyncServiceClient.connect(server.host, server.port)
            try:
                return await scenario(server, client)
            finally:
                await client.aclose()
                await server.aclose()

        results = asyncio.run(scaffold())
        for i, result in enumerate(results):
            oracle = session_from_wire(dict(spec))
            oracle.feed(blocks[i].copy())
            assert (result["step"], result["messages"]) == (oracle.step, oracle.messages)

    def test_batch_op_rejects_non_bool(self):
        async def scenario():
            server = MonitoringServer()
            await server.start()
            client = await AsyncServiceClient.connect(server.host, server.port)
            try:
                from repro.service.client import ServiceError

                with pytest.raises(ServiceError, match="enabled"):
                    await client.request("batch", enabled="yes")
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())
