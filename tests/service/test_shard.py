"""Sharded serving: placement, bit-identical sessions, migration, drain.

The heart of this file is the topology-independence law: the same
workload served by the single-process server, a 1-shard supervisor and
a 4-shard supervisor — with a mid-run checkpoint migration and a whole
shard restart thrown in — must produce *bit-identical* F(t) series,
cost snapshots and final results.  Worker processes are real (spawned),
sockets are real; nothing is mocked.
"""

import asyncio
from collections import Counter

import pytest

from repro.service import (
    AsyncServiceClient,
    MonitoringServer,
    ServiceError,
    ShardedMonitoringServer,
    ShardRing,
)
from repro.streams import registry

T, N, K, EPS = 360, 16, 3, 0.15
BLOCK = 60


def blocks_for(index: int):
    source = registry.stream("zipf", T, N, block_size=BLOCK, rng=13 + index)
    return list(source.iter_blocks())


def spec(index: int) -> dict:
    return dict(algorithm="approx-monitor", n=N, k=K, eps=EPS, seed=3 + index)


def payload(response: dict) -> dict:
    """A response minus its connection-local envelope (request id, ok)."""
    return {k: v for k, v in response.items() if k not in ("id", "ok")}


class TestShardRing:
    def test_deterministic_across_instances(self):
        a, b = ShardRing(4), ShardRing(4)
        keys = [f"s{i}" for i in range(200)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_covers_every_shard(self):
        ring = ShardRing(4)
        owners = Counter(ring.owner(f"s{i}") for i in range(500))
        assert sorted(owners) == [0, 1, 2, 3]
        # no shard starves: each owns a nontrivial share of keys
        assert min(owners.values()) > 25

    def test_growth_moves_few_keys(self):
        """Consistent hashing: adding a shard relocates ~1/N of the keys,
        not all of them (the property a modulo hash lacks)."""
        before, after = ShardRing(4), ShardRing(5)
        keys = [f"s{i}" for i in range(1000)]
        moved = sum(before.owner(k) != after.owner(k) for k in keys)
        assert 0 < moved < 400  # ideal is ~200 of 1000

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="at least 1 shard"):
            ShardRing(0)
        with pytest.raises(ValueError, match="at least 1 point"):
            ShardRing(2, points=0)


async def _drive_transcript(server, *, migrate_after=None, restart_after=None):
    """Create two sessions, feed all blocks, record every observable.

    ``migrate_after``: after that block index, migrate session 0.
    ``restart_after``: after that block index, restart the shard
    hosting session 1 (checkpoint out, replace the process, restore).
    Both are only meaningful on a :class:`ShardedMonitoringServer`.
    """
    host, port = await server.start()
    client = await AsyncServiceClient.connect(host, port)
    try:
        sids = [await client.create_session(**spec(i)) for i in range(2)]
        data = [blocks_for(i) for i in range(2)]
        transcript = []
        for block_index in range(len(data[0])):
            for sid, blocks in zip(sids, data):
                await client.feed(sid, blocks[block_index])
                status = await client.query(sid)
                transcript.append(
                    (sid, status["step"], status["messages"], tuple(status["output"]))
                )
            if block_index == migrate_after:
                await client.migrate(sids[0])
            if block_index == restart_after:
                await server.restart_shard(server._routes[sids[1]].shard)
        costs = [payload(await client.cost(sid)) for sid in sids]
        results = [await client.finalize(sid) for sid in sids]
        return transcript, costs, results
    finally:
        await client.aclose()
        await server.aclose()


class TestTopologyIndependence:
    def test_sharded_serving_is_bit_identical(self):
        """shards=1, shards=4, and the single-process server agree on
        every F(t), every cost snapshot, and every final result — even
        with a mid-run migration and a shard restart in the 4-shard run."""
        single = asyncio.run(_drive_transcript(MonitoringServer()))
        one_shard = asyncio.run(_drive_transcript(ShardedMonitoringServer(shards=1)))
        four_shards = asyncio.run(
            _drive_transcript(
                ShardedMonitoringServer(shards=4),
                migrate_after=2,
                restart_after=3,
            )
        )
        assert one_shard == single
        assert four_shards == single


class TestLifecycle:
    def test_migrate_restore_and_errors(self):
        async def scenario():
            server = ShardedMonitoringServer(shards=2, max_sessions=3)
            host, port = await server.start()
            client = await AsyncServiceClient.connect(host, port)
            try:
                sid = await client.create_session(**spec(0))
                blocks = blocks_for(0)
                for block in blocks[:3]:
                    await client.feed(sid, block)

                # explicit-target migration, then a same-shard no-op
                here = server._routes[sid].shard
                there = 1 - here
                move = await client.migrate(sid, there)
                assert move["moved"] and move["to_shard"] == there
                assert server._routes[sid].shard == there
                stay = await client.migrate(sid, there)
                assert stay["moved"] is False
                with pytest.raises(ServiceError, match="out of range"):
                    await client.migrate(sid, 7)
                with pytest.raises(ServiceError, match="no such session"):
                    await client.migrate("s999")

                # checkpoint travels through the supervisor like any op
                blob = await client.snapshot(sid)
                twin = await client.restore(blob)
                for block in blocks[3:]:
                    await client.feed(sid, block)
                    await client.feed(twin, block)
                assert payload(await client.query(twin)) == {
                    **payload(await client.query(sid)),
                    "session": twin,
                }

                # worker-side errors keep their type through forwarding
                with pytest.raises(ServiceError) as err:
                    await client.create_session(algorithm="nope", n=8, k=2)
                assert err.value.error_type == "KeyError"

                # the supervisor enforces the global session budget
                third = await client.create_session(**spec(1))
                with pytest.raises(ServiceError, match="session limit"):
                    await client.create_session(**spec(1))
                await client.close_session(third)

                rows = await client.list_sessions()
                assert [row["session"] for row in rows] == [sid, twin]
                assert all(row["shard"] in (0, 1) for row in rows)

                pong = await client.ping()
                assert pong["shards"] == 2
                assert pong["sessions"] == 2
                assert [s["alive"] for s in pong["shard_info"]] == [True, True]
            finally:
                await client.aclose()
                await server.aclose()
            assert all(w.process.exitcode == 0 for w in server._workers)

        asyncio.run(scenario())

    def test_dead_worker_fails_closed_and_restart_recovers(self):
        """A killed worker fails its own sessions' requests (ShardError),
        never the supervisor; `close` frees their budget slots even with
        the worker gone; restart_shard replaces the process, dropping the
        unsaveable sessions as `lost`, and the shard serves again."""

        async def scenario():
            server = ShardedMonitoringServer(shards=2)
            host, port = await server.start()
            client = await AsyncServiceClient.connect(host, port)
            try:
                sids = [await client.create_session(**spec(i)) for i in range(4)]
                blocks = blocks_for(0)
                for sid in sids:
                    await client.feed(sid, blocks[0])
                dead = server._routes[sids[0]].shard
                victims = [s for s in sids if server._routes[s].shard == dead]
                survivors = [s for s in sids if s not in victims]
                process = server._workers[dead].process
                process.kill()
                await asyncio.get_running_loop().run_in_executor(
                    None, process.join, 10
                )

                with pytest.raises(ServiceError) as err:
                    await client.feed(victims[0], blocks[1])
                assert err.value.error_type == "ShardError"
                for sid in survivors:  # the rest of the fleet keeps serving
                    await client.feed(sid, blocks[1])

                # close is the client's escape hatch for a dead shard
                await client.close_session(victims[0])
                assert (await client.ping())["sessions"] == len(sids) - 1

                info = await server.restart_shard(dead)
                assert info["lost"] == len(victims) - 1
                assert info["sessions"] == 0
                for sid in victims[1:]:  # unsaveable state is dropped loudly
                    with pytest.raises(ServiceError, match="no such session"):
                        await client.query(sid)

                fresh = await client.create_session(**spec(9))
                for block in blocks:
                    await client.feed(fresh, block)
                assert (await client.query(fresh))["step"] == T
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())

    def test_shutdown_op_drains_workers(self):
        async def scenario():
            server = ShardedMonitoringServer(shards=1)
            host, port = await server.start()
            serve_task = asyncio.create_task(server.serve_until_shutdown())
            client = await AsyncServiceClient.connect(host, port)
            sid = await client.create_session(**spec(0))
            await client.feed(sid, blocks_for(0)[0])
            response = await client.request("shutdown")
            assert response["stopping"] is True
            await asyncio.wait_for(serve_task, timeout=30)
            await client.aclose()
            return server

        server = asyncio.run(scenario())
        assert all(w.process.exitcode == 0 for w in server._workers)
