"""The write-ahead log: record framing, checkpoint delta, recovery law.

Unit tests drive :mod:`repro.service.wal` directly on a temp directory;
the server-level tests rebuild a :class:`MonitoringServer` on the same
WAL directory — *without* a clean shutdown, simulating process death —
and assert the recovered sessions are bit-identical to a never-crashed
in-process twin.  The cross-process (kill -9) flavor lives in
test_durability.py.
"""

import asyncio

import numpy as np
import pytest

from repro.service import wal as wallib
from repro.service import wire
from repro.service.client import AsyncServiceClient, ServiceError
from repro.service.server import MonitoringServer
from repro.service.session import session_from_wire
from repro.streams import registry

N, K, EPS = 8, 2, 0.2
BLOCK = 16


def spec(seed: int = 1) -> dict:
    return dict(algorithm="approx-monitor", n=N, k=K, eps=EPS, seed=seed)


def blocks(seed: int = 1, steps: int = 96):
    source = registry.stream("zipf", steps, N, block_size=BLOCK, rng=40 + seed)
    return list(source.iter_blocks())


def feed_record(sid: str, step: int) -> dict:
    values = np.full((2, N), float(step), dtype=np.float64)
    return {"op": "feed", "session": sid, "values": values, "step": step}


class TestRecordFraming:
    def test_round_trip(self):
        message = feed_record("s7", 4)
        record = wallib.encode_record(wire.encode_frame(message))
        decoded = wallib.decode_record_body(record[8:])
        assert decoded["op"] == "feed"
        assert decoded["session"] == "s7"
        assert decoded["step"] == 4
        np.testing.assert_array_equal(
            wire.decode_values(decoded["values"]), message["values"]
        )

    def test_crc_catches_corruption(self):
        record = bytearray(wallib.encode_record(wire.encode_frame(feed_record("s1", 1))))
        record[-1] ^= 0xFF
        with pytest.raises(wallib.WalError):
            list(wallib._iter_records(bytes(record), allow_torn_tail=False))
        assert list(wallib._iter_records(bytes(record), allow_torn_tail=True)) == []


class TestWriteAheadLog:
    def _fill(self, wal, sid="s1", count=3):
        for step in range(1, count + 1):
            wal.append(feed_record(sid, step))

    def test_append_recover_round_trip(self, tmp_path):
        with wallib.WriteAheadLog(tmp_path) as wal:
            self._fill(wal)
        state = wallib.WriteAheadLog(tmp_path).recover()
        assert state.sessions == {} and state.next_id == 0
        assert [record["step"] for record in state.records] == [1, 2, 3]
        assert state.dropped_bytes == 0

    def test_torn_tail_is_discarded_silently(self, tmp_path):
        with wallib.WriteAheadLog(tmp_path) as wal:
            self._fill(wal)
            segment = wal._segment_path(wal._seq)
        data = segment.read_bytes()
        segment.write_bytes(data[:-5])  # a record whose ack never left
        state = wallib.WriteAheadLog(tmp_path).recover()
        assert [record["step"] for record in state.records] == [1, 2]
        assert state.dropped_bytes > 0

    def test_mid_log_corruption_is_refused(self, tmp_path):
        # only the NEWEST segment may have a torn tail; corruption in an
        # older segment sits under acked ops and must refuse loudly
        with wallib.WriteAheadLog(tmp_path) as wal:
            self._fill(wal)
            old = wal._segment_path(wal._seq)
            wal.begin_checkpoint()  # rotate (no commit: no manifest)
            wal.append(feed_record("s1", 4))
        data = bytearray(old.read_bytes())
        data[10] ^= 0xFF
        old.write_bytes(bytes(data))
        with pytest.raises(wallib.WalError, match="corrupt"):
            wallib.WriteAheadLog(tmp_path).recover()

    def test_checkpoint_truncates_and_deltas(self, tmp_path):
        session = session_from_wire(spec())
        for block in blocks()[:2]:
            session.feed(block)
        blob = session.snapshot()
        with wallib.WriteAheadLog(tmp_path) as wal:
            self._fill(wal, count=4)
            segment = wal.begin_checkpoint()
            wal.commit_checkpoint(segment, {"s1": (session.step, blob)}, next_id=1)
            assert wal.bytes_since_checkpoint == 0
            # records after the checkpoint land in the retained segment
            wal.append(feed_record("s1", session.step + 2))

            # delta: an unchanged session re-checkpoints without a blob
            segment = wal.begin_checkpoint()
            wal.commit_checkpoint(segment, {"s1": (session.step, None)}, next_id=1)
            # ... but lying about the step is refused
            with pytest.raises(wallib.WalError, match="reuse"):
                wal.commit_checkpoint(
                    wal.begin_checkpoint(), {"s1": (session.step + 9, None)}, next_id=1
                )
        state = wallib.WriteAheadLog(tmp_path).recover()
        assert state.sessions == {"s1": blob}
        assert state.steps == {"s1": session.step}
        assert state.next_id == 1
        # both checkpoints truncated: pre-checkpoint records are gone
        assert [record["step"] for record in state.records] == []
        # only segments >= the newest manifest rotation survive pruning
        names = sorted(p.name for p in tmp_path.glob("wal-*.log"))
        assert len(names) <= 2

    def test_should_checkpoint_threshold(self, tmp_path):
        with wallib.WriteAheadLog(tmp_path, checkpoint_bytes=1) as wal:
            assert not wal.should_checkpoint()
            wal.append(feed_record("s1", 1))
            assert wal.should_checkpoint()


async def _drive(server, *, upto=6):
    """Create two sessions on a started server, feed their block prefix."""
    host, port = await server.start()
    client = await AsyncServiceClient.connect(host, port)
    try:
        sids = [await client.create_session(**spec(i)) for i in range(2)]
        for i, sid in enumerate(sids):
            for block in blocks(i)[:upto]:
                await client.feed(sid, block)
        return sids
    finally:
        await client.aclose()


def _strip(response):
    return {k: v for k, v in response.items() if k not in ("id", "ok")}


async def _observe(server, sid):
    """(query, cost, snapshot bytes) minus the connection envelope."""
    client = await AsyncServiceClient.connect(server.host, server.port)
    try:
        return (
            _strip(await client.query(sid)),
            _strip(await client.cost(sid)),
            await client.snapshot(sid),
        )
    finally:
        await client.aclose()


class TestServerRecovery:
    def test_rebuild_without_shutdown_is_bit_identical(self, tmp_path):
        """Tear the server down with *no* aclose (simulated death) and
        rebuild on the WAL directory: step, cost and checkpoint bytes
        all match a twin that never died.  A tiny checkpoint threshold
        forces the full cycle (rotate, snapshot, truncate) to run
        mid-stream, so recovery replays checkpoint + tail, not a flat
        log."""

        async def scenario():
            crashed = MonitoringServer(
                wal_dir=tmp_path, wal_checkpoint_bytes=4096
            )
            sids = await _drive(crashed)
            assert (tmp_path / "manifest.json").exists()
            # reap the in-flight checkpoint so its prune can't race the
            # rebuild below, then abandon the sockets without aclose:
            # the process "died" — the WAL was never closed cleanly
            if crashed._checkpoint_task is not None:
                await crashed._checkpoint_task
            crashed._server.close()

            recovered = MonitoringServer(wal_dir=tmp_path)
            assert sorted(recovered._slots) == sorted(sids)
            await recovered.start()
            for i, sid in enumerate(sids):
                twin = session_from_wire(spec(i))
                for block in blocks(i)[:6]:
                    twin.feed(block)
                query, cost, blob = await _observe(recovered, sid)
                assert query["step"] == twin.step
                assert query["messages"] == twin.messages
                assert cost["messages"] == twin.cost().messages
                assert blob == twin.snapshot()  # bit-identical checkpoint
            # recovered sessions keep serving and ids keep minting fresh
            client = await AsyncServiceClient.connect(
                recovered.host, recovered.port
            )
            try:
                fresh = await client.create_session(**spec(7))
                assert fresh not in sids
            finally:
                await client.aclose()
            await recovered.aclose()

        asyncio.run(scenario())

    def test_durability_toggle(self, tmp_path):
        async def scenario():
            server = MonitoringServer(wal_dir=tmp_path)
            await server.start()
            client = await AsyncServiceClient.connect(server.host, server.port)
            try:
                status = await client.durability()
                assert status["enabled"] is True and status["wal"] is True

                sid = await client.create_session(**spec())
                off = await client.durability(False)
                assert off["enabled"] is False
                logged = server._wal.bytes_since_checkpoint
                await client.feed(sid, blocks()[0])  # not appended
                assert server._wal.bytes_since_checkpoint == logged

                on = await client.durability(True)  # forces a checkpoint
                assert on["enabled"] is True
                assert (tmp_path / "manifest.json").exists()
                # the checkpoint caught the unlogged feed: a rebuild now
                # still reproduces the full state
                state = wallib.WriteAheadLog(tmp_path).recover()
                assert state.steps[sid] == BLOCK
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())

    def test_enable_without_wal_dir_is_refused(self):
        async def scenario():
            server = MonitoringServer()
            await server.start()
            client = await AsyncServiceClient.connect(server.host, server.port)
            try:
                status = await client.durability()
                assert status == {
                    "id": status["id"], "ok": True, "enabled": False, "wal": False,
                }
                with pytest.raises(ServiceError, match="WAL directory"):
                    await client.durability(True)
                off = await client.durability(False)  # harmless no-op
                assert off["enabled"] is False
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(scenario())

    def test_wal_metrics_families(self, tmp_path):
        async def scenario():
            server = MonitoringServer(wal_dir=tmp_path)
            await _drive(server)
            dump = server.metrics_dump()
            assert dump["counters"]["repro_wal_records_total"] > 0
            assert dump["counters"]["repro_wal_bytes_total"] > 0
            assert dump["gauges"]["repro_wal_segment_bytes"] > 0
            await server.aclose()

            recovered = MonitoringServer(wal_dir=tmp_path)
            dump = recovered.metrics_dump()
            assert dump["counters"]["repro_wal_recovered_sessions_total"] == 2
            assert dump["counters"]["repro_wal_replayed_records_total"] > 0
            await recovered.aclose()

        asyncio.run(scenario())
