"""Wire protocol: framing and value-encoding round trips."""

import numpy as np
import pytest

from repro.service import wire


class TestFraming:
    def test_line_round_trip(self):
        message = {"id": 3, "op": "feed", "session": "s1"}
        line = wire.encode_line(message)
        assert line.endswith(b"\n")
        assert wire.decode_line(line) == message

    def test_non_object_rejected(self):
        with pytest.raises(wire.WireError, match="JSON object"):
            wire.decode_line(b"[1, 2]\n")

    def test_bad_json_rejected(self):
        with pytest.raises(wire.WireError, match="not valid JSON"):
            wire.decode_line(b"{nope\n")

    def test_oversize_frame_rejected(self):
        with pytest.raises(wire.WireError, match="cap"):
            wire.decode_line(b"x" * (wire.MAX_LINE_BYTES + 1))


class TestValues:
    @pytest.mark.parametrize("encoding", ["b64", "json"])
    def test_round_trip(self, encoding):
        block = np.arange(12, dtype=np.float64).reshape(3, 4) * 1.5
        payload = wire.encode_values(block, encoding)
        decoded = wire.decode_values(payload)
        assert decoded.dtype == np.float64
        np.testing.assert_array_equal(decoded, block)

    @pytest.mark.parametrize("encoding", ["b64", "json"])
    def test_single_row_becomes_batch(self, encoding):
        row = np.array([1.0, 2.0, 3.0])
        decoded = wire.decode_values(wire.encode_values(row, encoding))
        assert decoded.shape == (1, 3)

    def test_b64_survives_json_framing(self):
        block = np.random.default_rng(0).uniform(0, 1e6, size=(7, 5))
        line = wire.encode_line({"values": wire.encode_values(block, "b64")})
        decoded = wire.decode_values(wire.decode_line(line)["values"])
        np.testing.assert_array_equal(decoded, block)  # bit-exact, not approx

    def test_unknown_encoding(self):
        with pytest.raises(wire.WireError, match="unknown values encoding"):
            wire.encode_values(np.ones((2, 2)), "pickle")

    def test_b64_shape_mismatch(self):
        payload = wire.encode_values(np.ones((2, 3)))
        payload["shape"] = [2, 4]
        with pytest.raises(wire.WireError, match="needs"):
            wire.decode_values(payload)

    def test_b64_bad_payloads(self):
        with pytest.raises(wire.WireError, match="bad b64"):
            wire.decode_values({"b64": "!!!", "shape": [1, 1]})
        with pytest.raises(wire.WireError, match="shape"):
            wire.decode_values({"b64": "", "shape": [0, -1]})

    def test_wrong_container(self):
        with pytest.raises(wire.WireError, match="list or a b64"):
            wire.decode_values("1,2,3")

    def test_3d_rejected(self):
        with pytest.raises(wire.WireError, match="batch"):
            wire.encode_values(np.ones((2, 2, 2)))
        with pytest.raises(wire.WireError, match="batch"):
            wire.decode_values([[[1.0]]])


class TestBlobs:
    def test_round_trip(self):
        blob = bytes(range(256))
        assert wire.decode_blob(wire.encode_blob(blob)) == blob

    def test_raw_bytes_pass_through(self):
        blob = bytes(range(256))
        assert wire.decode_blob(blob) == blob

    def test_bad_blob(self):
        with pytest.raises(wire.WireError, match="checkpoint"):
            wire.decode_blob("@@@not-base64@@@")


def frame_round_trip(message, *, response=False):
    frame = wire.encode_frame(message, response=response)
    header = wire.parse_header(frame)
    meta = frame[wire.HEADER_SIZE:wire.HEADER_SIZE + header.meta_len]
    payload = frame[wire.HEADER_SIZE + header.meta_len:]
    assert len(payload) == header.payload_len
    return header, wire.decode_frame(header, meta, payload)


class TestFrames:
    def test_request_round_trip_carries_meta(self):
        header, message = frame_round_trip(
            {"id": 3, "op": "advance", "session": "s7", "steps": 25}
        )
        assert header.code == wire.OP_CODES["advance"]
        assert header.session == 7 and not header.response
        assert message == {"id": 3, "op": "advance", "session": "s7", "steps": 25}

    def test_values_ride_as_zero_copy_payload(self):
        block = np.arange(12, dtype=np.float64).reshape(3, 4) * 1.5
        header, message = frame_round_trip(
            {"id": 1, "op": "feed", "session": "s1", "values": block}
        )
        assert header.kind == wire.KIND_VALUES
        assert header.payload_len == block.nbytes  # raw f8, no base64 +33%
        decoded = message["values"]
        np.testing.assert_array_equal(decoded, block)
        assert decoded.base is not None  # a frombuffer view, not a copy

    def test_v1_b64_values_convert_to_raw_payload(self):
        """The supervisor's v1→v2 bridge: a b64 dict from a JSON-lines
        client becomes the binary payload exactly once."""
        block = np.random.default_rng(3).uniform(0, 1e6, size=(5, 4))
        header, message = frame_round_trip(
            {"id": 1, "op": "feed", "session": "s1",
             "values": wire.encode_values(block, "b64")}
        )
        assert header.payload_len == block.nbytes
        np.testing.assert_array_equal(message["values"], block)

    def test_blob_round_trip(self):
        blob = bytes(range(256)) * 3
        header, message = frame_round_trip(
            {"id": 2, "ok": True, "session": "s4", "step": 9, "state": blob},
            response=True,
        )
        assert header.kind == wire.KIND_BLOB and header.response
        assert message["state"] == blob and message["step"] == 9
        assert message["ok"] is True

    def test_error_frame(self):
        frame = wire.encode_error_frame(9, KeyError("no such session 's9'"))
        header = wire.parse_header(frame)
        message = wire.decode_frame(
            header, frame[wire.HEADER_SIZE:], b""
        )
        assert message["ok"] is False
        assert message["error_type"] == "KeyError"
        assert "no such session" in message["error"]

    def test_json_list_values_convert_to_raw_payload(self):
        """A nested-list batch must ride as payload, not meta text — a
        large json-encoded feed re-framed by the shard supervisor would
        otherwise hit the 4 MiB meta cap that v1's 32 MiB line budget
        never imposed."""
        block = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]
        header, message = frame_round_trip(
            {"id": 1, "op": "feed", "session": "s1", "values": block}
        )
        assert header.kind == wire.KIND_VALUES
        assert header.payload_len == 6 * 8
        np.testing.assert_array_equal(message["values"], np.asarray(block))

    def test_malformed_bulk_stays_in_meta(self):
        """Garbage values/state must reach the server so it can reject
        them — the codec refuses to guess."""
        header, message = frame_round_trip(
            {"id": 1, "op": "feed", "session": "s1", "values": "garbage"}
        )
        assert header.kind == wire.KIND_NONE
        assert message["values"] == "garbage"

    def test_session_ids_must_be_numeric(self):
        with pytest.raises(wire.WireError, match="numeric session ids"):
            wire.encode_frame({"id": 1, "op": "query", "session": "bogus"})


class TestFrameFuzz:
    def good_header(self, **overrides):
        fields = dict(kind=wire.KIND_NONE, code=wire.OP_CODES["ping"],
                      request_id=1, session=0, meta_len=0, payload_len=0)
        fields.update(overrides)
        return wire.pack_header(**fields)

    def test_truncated_header(self):
        with pytest.raises(wire.WireError, match="truncated"):
            wire.parse_header(self.good_header()[:10])

    def test_bad_magic(self):
        with pytest.raises(wire.WireError, match="magic"):
            wire.parse_header(b"XX" + self.good_header()[2:])

    def test_wrong_version(self):
        bad = bytearray(self.good_header())
        bad[2] = 7
        with pytest.raises(wire.WireError, match="version"):
            wire.parse_header(bytes(bad))

    def test_unknown_kind(self):
        bad = bytearray(self.good_header())
        bad[3] = 9
        with pytest.raises(wire.WireError, match="kind"):
            wire.parse_header(bytes(bad))

    def test_length_caps(self):
        with pytest.raises(wire.WireError, match="cap"):
            wire.parse_header(
                self.good_header(meta_len=wire.MAX_META_BYTES + 1)
            )
        with pytest.raises(wire.WireError, match="cap"):
            wire.parse_header(
                self.good_header(payload_len=wire.MAX_PAYLOAD_BYTES + 1)
            )

    def test_payload_shape_mismatch(self):
        header = wire.parse_header(
            self.good_header(kind=wire.KIND_VALUES,
                             code=wire.OP_CODES["feed"],
                             meta_len=0, payload_len=24)
        )
        import json
        meta = json.dumps({"shape": [2, 4]}).encode()
        with pytest.raises(wire.WireError, match="needs"):
            wire.decode_frame(header._replace(meta_len=len(meta)),
                              meta, b"\x00" * 24)

    def test_non_finite_payload(self):
        block = np.array([[1.0, np.inf]])
        frame = wire.encode_frame(
            {"id": 1, "op": "feed", "session": "s1", "values": block}
        )
        header = wire.parse_header(frame)
        meta = frame[wire.HEADER_SIZE:wire.HEADER_SIZE + header.meta_len]
        payload = frame[wire.HEADER_SIZE + header.meta_len:]
        with pytest.raises(wire.WireError, match="non-finite"):
            wire.decode_frame(header, meta, payload)

    def test_non_finite_rejected_on_every_encoding(self):
        bad = np.array([[1.0, np.nan]])
        for payload in (wire.encode_values(bad, "b64"), bad.tolist()):
            with pytest.raises(wire.WireError, match="non-finite"):
                wire.decode_values(payload)

    def test_bad_meta_json(self):
        header = wire.parse_header(self.good_header(meta_len=5))
        with pytest.raises(wire.WireError, match="meta"):
            wire.decode_frame(header, b"{nope", b"")
