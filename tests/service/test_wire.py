"""Wire protocol: framing and value-encoding round trips."""

import numpy as np
import pytest

from repro.service import wire


class TestFraming:
    def test_line_round_trip(self):
        message = {"id": 3, "op": "feed", "session": "s1"}
        line = wire.encode_line(message)
        assert line.endswith(b"\n")
        assert wire.decode_line(line) == message

    def test_non_object_rejected(self):
        with pytest.raises(wire.WireError, match="JSON object"):
            wire.decode_line(b"[1, 2]\n")

    def test_bad_json_rejected(self):
        with pytest.raises(wire.WireError, match="not valid JSON"):
            wire.decode_line(b"{nope\n")

    def test_oversize_frame_rejected(self):
        with pytest.raises(wire.WireError, match="cap"):
            wire.decode_line(b"x" * (wire.MAX_LINE_BYTES + 1))


class TestValues:
    @pytest.mark.parametrize("encoding", ["b64", "json"])
    def test_round_trip(self, encoding):
        block = np.arange(12, dtype=np.float64).reshape(3, 4) * 1.5
        payload = wire.encode_values(block, encoding)
        decoded = wire.decode_values(payload)
        assert decoded.dtype == np.float64
        np.testing.assert_array_equal(decoded, block)

    @pytest.mark.parametrize("encoding", ["b64", "json"])
    def test_single_row_becomes_batch(self, encoding):
        row = np.array([1.0, 2.0, 3.0])
        decoded = wire.decode_values(wire.encode_values(row, encoding))
        assert decoded.shape == (1, 3)

    def test_b64_survives_json_framing(self):
        block = np.random.default_rng(0).uniform(0, 1e6, size=(7, 5))
        line = wire.encode_line({"values": wire.encode_values(block, "b64")})
        decoded = wire.decode_values(wire.decode_line(line)["values"])
        np.testing.assert_array_equal(decoded, block)  # bit-exact, not approx

    def test_unknown_encoding(self):
        with pytest.raises(wire.WireError, match="unknown values encoding"):
            wire.encode_values(np.ones((2, 2)), "pickle")

    def test_b64_shape_mismatch(self):
        payload = wire.encode_values(np.ones((2, 3)))
        payload["shape"] = [2, 4]
        with pytest.raises(wire.WireError, match="needs"):
            wire.decode_values(payload)

    def test_b64_bad_payloads(self):
        with pytest.raises(wire.WireError, match="bad b64"):
            wire.decode_values({"b64": "!!!", "shape": [1, 1]})
        with pytest.raises(wire.WireError, match="shape"):
            wire.decode_values({"b64": "", "shape": [0, -1]})

    def test_wrong_container(self):
        with pytest.raises(wire.WireError, match="list or a b64"):
            wire.decode_values("1,2,3")

    def test_3d_rejected(self):
        with pytest.raises(wire.WireError, match="batch"):
            wire.encode_values(np.ones((2, 2, 2)))
        with pytest.raises(wire.WireError, match="batch"):
            wire.decode_values([[[1.0]]])


class TestBlobs:
    def test_round_trip(self):
        blob = bytes(range(256))
        assert wire.decode_blob(wire.encode_blob(blob)) == blob

    def test_bad_blob(self):
        with pytest.raises(wire.WireError, match="checkpoint"):
            wire.decode_blob("@@@not-base64@@@")
