"""Unit tests for :mod:`repro.streams.adversarial`."""

import numpy as np
import pytest

from repro.model.invariants import exact_topk_set
from repro.model.node import NodeArray
from repro.streams.adversarial import LowerBoundAdversary, oscillation_trace


class TestLowerBoundAdversary:
    def test_num_steps_formula(self):
        adv = LowerBoundAdversary(16, 3, 10, eps=0.2, epochs=2)
        # 1 setup + 2 * ((10-3) drops + 1 reset)
        assert adv.num_steps == 1 + 2 * 8

    def test_sigma_validation(self):
        with pytest.raises(ValueError, match="sigma"):
            LowerBoundAdversary(16, 3, 3, eps=0.2)
        with pytest.raises(ValueError, match="sigma"):
            LowerBoundAdversary(16, 3, 17, eps=0.2)

    def test_tiny_y0_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            LowerBoundAdversary(8, 2, 4, eps=0.2, y0=2)

    def test_initial_layout(self):
        adv = LowerBoundAdversary(8, 2, 5, eps=0.25, epochs=1, y0=1000)
        nodes = NodeArray(8)
        row = adv.values(0, nodes)
        assert (row[:5] == 1000).all()
        assert (row[5:] < 0.75 * 1000).all()

    def test_drops_target_protected_nodes(self):
        """With valid filters, every drop violates one (forced_drops counts)."""
        adv = LowerBoundAdversary(8, 2, 5, eps=0.25, epochs=1, y0=1000, rng=0)
        nodes = NodeArray(8)
        nodes.deliver(adv.values(0, nodes))
        # Server-style filters: top-2 (ids 0,1) get [y0, inf], rest [0, y0].
        nodes.filter_lo[:] = -np.inf
        nodes.filter_hi[:] = 1000.0
        nodes.filter_lo[[0, 1]] = 1000.0
        nodes.filter_hi[[0, 1]] = np.inf
        row = adv.values(1, nodes)
        dropped = np.flatnonzero(row != nodes.values)
        assert dropped.size == 1 and dropped[0] in (0, 1)
        assert adv.forced_drops == 1

    def test_epoch_reset_restores_band(self):
        adv = LowerBoundAdversary(8, 2, 4, eps=0.25, epochs=2, y0=1000, rng=0)
        nodes = NodeArray(8)
        values = adv.values(0, nodes)
        for t in range(1, adv.num_steps):
            nodes.deliver(values)
            values = adv.values(t, nodes)
        # After the final reset all band nodes are back at y0.
        assert (adv.trace.data[-1, :4] == 1000.0).all()

    def test_trace_requires_steps(self):
        adv = LowerBoundAdversary(8, 2, 4, eps=0.25)
        with pytest.raises(RuntimeError):
            _ = adv.trace

    def test_offline_reference_cost(self):
        adv = LowerBoundAdversary(8, 2, 4, eps=0.25, epochs=3)
        assert adv.offline_reference_cost() == 3 * 3


class TestPivotChaser:
    def test_needs_enough_nodes(self):
        from repro.streams.adversarial import PivotChaser

        with pytest.raises(ValueError, match="k\\+2"):
            PivotChaser(10, n=4, k=3, high=1000.0)

    def test_chaser_rides_filter_bound(self):
        from repro.streams.adversarial import PivotChaser

        src = PivotChaser(10, n=6, k=2, high=1000.0)
        nodes = NodeArray(6)
        row = src.values(0, nodes)
        assert row[2] == 4.0  # chaser starts at the bottom
        nodes.deliver(row)
        nodes.filter_hi[2] = 500.0  # assign a finite bound
        row = src.values(1, nodes)
        assert row[2] == 501.0  # rides just above it

    def test_spike_and_reset_cycle(self):
        from repro.streams.adversarial import PivotChaser

        src = PivotChaser(10, n=6, k=2, high=1000.0)
        nodes = NodeArray(6)
        nodes.deliver(src.values(0, nodes))
        nodes.filter_hi[2] = 999.0  # next ride would touch the plateau
        row = src.values(1, nodes)
        assert row[2] > 1000.0  # spike above the plateau
        nodes.deliver(row)
        row = src.values(2, nodes)
        assert row[2] == 4.0  # back to the bottom
        assert src.resets == 1


class TestOscillationTrace:
    def test_ranks_never_change(self):
        tr = oscillation_trace(100, 12, 4, rng=0)
        expected = exact_topk_set(tr.data[0], 4)
        for t in range(tr.num_steps):
            assert exact_topk_set(tr.data[t], 4) == expected

    def test_values_do_oscillate(self):
        tr = oscillation_trace(100, 12, 4, rng=0)
        assert (np.diff(tr.data, axis=0) != 0).any()

    def test_amplitude_guard(self):
        with pytest.raises(ValueError, match="amplitude"):
            oscillation_trace(10, 8, 2, gap=100.0, amplitude=60.0)
