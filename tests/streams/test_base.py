"""Unit tests for :mod:`repro.streams.base`."""

import numpy as np
import pytest

from repro.model.node import NodeArray
from repro.streams.base import Trace


@pytest.fixture
def trace() -> Trace:
    data = np.array(
        [
            [10.0, 20.0, 30.0],
            [15.0, 18.0, 29.0],
            [40.0, 5.0, 28.0],
        ]
    )
    return Trace(data)


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            Trace(np.zeros(5))
        with pytest.raises(ValueError, match="n >= 2"):
            Trace(np.zeros((3, 1)))

    def test_finiteness(self):
        with pytest.raises(ValueError, match="finite"):
            Trace(np.array([[1.0, np.nan]]))

    def test_immutability(self, trace):
        with pytest.raises(ValueError):
            trace.data[0, 0] = 99.0

    def test_copy_on_construction(self):
        src = np.ones((2, 2))
        tr = Trace(src)
        src[0, 0] = 7.0
        assert tr.data[0, 0] == 1.0


class TestValueSource:
    def test_dimensions(self, trace):
        assert trace.n == 3 and trace.num_steps == 3

    def test_values_ignores_nodes(self, trace):
        nodes = NodeArray(3)
        assert trace.values(1, nodes).tolist() == [15.0, 18.0, 29.0]


class TestGroundTruth:
    def test_delta(self, trace):
        assert trace.delta == 40.0
        assert trace.min_value == 5.0

    def test_kth_largest_series(self, trace):
        assert trace.kth_largest_series(1).tolist() == [30.0, 29.0, 40.0]
        assert trace.kth_largest_series(2).tolist() == [20.0, 18.0, 28.0]

    def test_kth_largest_at(self, trace):
        assert trace.kth_largest_at(2, 3) == 5.0

    def test_sigma_series(self):
        data = np.array([[100.0, 99.0, 98.0, 10.0], [100.0, 99.0, 50.0, 10.0]])
        tr = Trace(data)
        assert tr.sigma_series(2, 0.05).tolist() == [3, 2]
        assert tr.sigma_max(2, 0.05) == 3

    def test_slice_steps(self, trace):
        sub = trace.slice_steps(1, 3)
        assert sub.num_steps == 2
        assert sub.data[0, 0] == 15.0

    def test_is_integral(self, trace):
        assert trace.is_integral()
        assert not Trace(np.array([[1.5, 2.0]])).is_integral()

    def test_has_distinct_columns(self):
        assert Trace(np.array([[1.0, 2.0]])).has_distinct_columns()
        assert not Trace(np.array([[1.0, 1.0]])).has_distinct_columns()

    def test_has_distinct_columns_agrees_with_per_row_unique(self):
        """Regression: the sort-based check equals the old np.unique loop."""
        rng = np.random.default_rng(0)
        for _ in range(20):
            T, n = int(rng.integers(1, 30)), int(rng.integers(2, 10))
            data = rng.integers(0, 12, size=(T, n)).astype(np.float64)
            tr = Trace(data)
            old = all(np.unique(data[t]).size == n for t in range(T))
            assert tr.has_distinct_columns() == old

    def test_has_distinct_columns_duplicate_in_last_row_only(self):
        data = np.arange(12.0).reshape(3, 4)
        data[2, 3] = data[2, 0]
        assert not Trace(data).has_distinct_columns()

    def test_has_distinct_columns_is_fast(self):
        """A 1e5 x 64 trace must finish in well under a second."""
        import time

        rng = np.random.default_rng(1)
        tr = Trace(rng.random((100_000, 64)))  # floats: distinct a.s.
        start = time.perf_counter()
        assert tr.has_distinct_columns()
        assert time.perf_counter() - start < 1.0
