"""Unit tests for :mod:`repro.streams.scenarios`."""

import numpy as np
import pytest

from repro.streams.chunking import forward_fill_events
from repro.streams.scenarios import (
    correlated_sensors,
    drifting_walk,
    load_trace,
    markov_levels,
    replay_trace,
    save_trace,
    window_churn,
    zipf_load,
)


class TestForwardFill:
    def test_matches_sequential_updates(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            B, n = int(rng.integers(1, 25)), int(rng.integers(1, 7))
            carry = rng.integers(0, 100, size=n).astype(np.float64)
            mask = rng.random((B, n)) < 0.3
            fresh = rng.integers(100, 200, size=int(mask.sum())).astype(np.float64)
            filled, new_carry = forward_fill_events(carry, mask, fresh)
            # Reference: the per-step loop the fill replaces.
            state = carry.copy()
            queue = list(fresh)
            expect = np.empty((B, n))
            for t in range(B):
                for i in range(n):
                    if mask[t, i]:
                        state[i] = queue.pop(0)
                expect[t] = state
            assert np.array_equal(filled, expect)
            assert np.array_equal(new_carry, state)

    def test_no_events_keeps_carry(self):
        carry = np.array([1.0, 2.0])
        filled, new_carry = forward_fill_events(
            carry, np.zeros((4, 2), dtype=bool), np.empty(0)
        )
        assert np.array_equal(filled, np.tile(carry, (4, 1)))
        assert np.array_equal(new_carry, carry)


class TestZipfLoad:
    def test_heavy_tail_dominates(self):
        """With a heavy tail the top node carries far more than the median."""
        tr = zipf_load(50, 64, alpha=1.1, churn=0.0, rng=0)
        first = tr.data[0]
        assert first.max() > 10 * np.median(first)

    def test_churn_changes_levels(self):
        calm = zipf_load(400, 8, churn=0.0, noise=0.0, rng=2)
        churny = zipf_load(400, 8, churn=0.05, noise=0.0, rng=2)
        assert np.unique(calm.data, axis=0).shape[0] == 1
        assert np.unique(churny.data, axis=0).shape[0] > 10

    def test_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            zipf_load(10, 4, alpha=0.0)
        with pytest.raises(ValueError, match="churn"):
            zipf_load(10, 4, churn=1.5)


class TestMarkovLevels:
    def test_stay_one_is_static(self):
        tr = markov_levels(100, 8, stay=1.0, noise=0.0, rng=1)
        assert np.unique(tr.data, axis=0).shape[0] == 1

    def test_low_stay_switches_often(self):
        tr = markov_levels(200, 8, stay=0.5, noise=0.0, states=4, rng=1)
        changes = (tr.data[1:] != tr.data[:-1]).any(axis=1).sum()
        assert changes > 50

    def test_levels_within_spread(self):
        tr = markov_levels(100, 8, spread=500.0, noise=0.0, rng=3)
        assert tr.data.min() >= 0 and tr.delta <= 500.0


class TestDriftingWalk:
    def test_stays_in_bounds(self):
        tr = drifting_walk(2_000, 8, low=100.0, high=900.0, drift=2.0, rng=0)
        assert tr.min_value >= 100.0 and tr.delta <= 900.0

    def test_drift_separates_ranks(self):
        """With drift, late rankings decorrelate from early ones."""
        tr = drifting_walk(5_000, 16, high=2**16, step=2.0, drift=10.0, rng=4)
        early = np.argsort(tr.data[0])
        late = np.argsort(tr.data[-1])
        assert not np.array_equal(early, late)

    def test_validation(self):
        with pytest.raises(ValueError, match="high > low"):
            drifting_walk(10, 4, low=5.0, high=5.0)


class TestCorrelatedSensors:
    def test_within_cluster_correlation_exceeds_between(self):
        tr = correlated_sensors(
            800, 12, clusters=2, rho=0.95, amplitude=0.0, noise=50.0, rng=0
        )
        # Nodes 0..? cluster assignment is random; recover it from the data:
        # correlation with node 0 splits the field into two groups.
        corr = np.corrcoef(tr.data.T)
        with_node0 = corr[0]
        grouped = np.sort(with_node0)[::-1]
        # Half the nodes (its own cluster) correlate strongly, rest weakly.
        assert grouped[1] > 0.5  # at least one same-cluster partner
        assert grouped[-1] < 0.5  # and the other cluster is far off

    def test_validation(self):
        with pytest.raises(ValueError, match="clusters"):
            correlated_sensors(10, 4, clusters=8)
        with pytest.raises(ValueError, match="rho"):
            correlated_sensors(10, 4, rho=1.5)


class TestWindowChurn:
    def test_static_between_boundaries(self):
        tr = window_churn(100, 8, window=40, noise=0.0, rng=1)
        assert np.unique(tr.data[:40], axis=0).shape[0] == 1
        assert np.unique(tr.data[40:80], axis=0).shape[0] == 1

    def test_boundary_churns_levels(self):
        tr = window_churn(100, 32, window=50, churn_frac=1.0, noise=0.0, rng=2)
        assert not np.array_equal(tr.data[49], tr.data[50])

    def test_zero_churn_is_fully_static(self):
        tr = window_churn(120, 8, window=30, churn_frac=0.0, noise=0.0, rng=3)
        assert np.unique(tr.data, axis=0).shape[0] == 1


class TestSaveLoadReplay:
    def test_npz_round_trip_is_exact(self, tmp_path):
        tr = zipf_load(60, 6, rng=0)
        path = save_trace(tr, tmp_path / "trace")
        assert path.suffix == ".npz"
        again = load_trace(path)
        assert again.data.tobytes() == tr.data.tobytes()

    def test_replay_slices_the_front(self, tmp_path):
        tr = markov_levels(80, 5, rng=1)
        path = save_trace(tr, tmp_path / "trace")
        front = replay_trace(30, 5, path=str(path))
        assert np.array_equal(front.data, tr.data[:30])

    def test_load_rejects_foreign_archives(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, values=np.ones((3, 3)))
        with pytest.raises(ValueError, match="no 'data'"):
            load_trace(path)
