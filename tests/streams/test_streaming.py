"""Tests for :mod:`repro.streams.streaming` — the O(n·block) source."""

import numpy as np
import pytest

from repro.core.approx_monitor import ApproxTopKMonitor
from repro.model.engine import MonitoringEngine, ValueSource
from repro.model.node import NodeArray
from repro.streams import registry
from repro.streams.base import Trace
from repro.streams.streaming import ChunkedTrace, StreamingSource


def _source_from(data: np.ndarray, block_size: int) -> StreamingSource:
    def factory():
        for start in range(0, data.shape[0], block_size):
            yield data[start : start + block_size]

    return StreamingSource(factory, num_steps=data.shape[0], n=data.shape[1])


@pytest.fixture
def data() -> np.ndarray:
    return np.random.default_rng(0).integers(0, 100, size=(37, 5)).astype(np.float64)


class TestProtocol:
    def test_is_a_value_source(self, data):
        src = _source_from(data, 8)
        assert isinstance(src, ValueSource)
        assert src.prevalidated is True
        assert src.n == 5 and src.num_steps == 37

    def test_chunked_trace_is_an_alias(self):
        assert ChunkedTrace is StreamingSource

    def test_sequential_delivery_matches_rows(self, data):
        src = _source_from(data, 8)
        nodes = NodeArray(5)
        for t in range(37):
            assert np.array_equal(src.values(t, nodes), data[t])

    def test_backward_seek_rejected_without_reset(self, data):
        src = _source_from(data, 8)
        nodes = NodeArray(5)
        src.values(20, nodes)
        with pytest.raises(ValueError, match="seek backwards"):
            src.values(3, nodes)

    def test_reset_starts_a_fresh_pass(self, data):
        src = _source_from(data, 8)
        nodes = NodeArray(5)
        src.values(30, nodes)
        src.reset()
        assert np.array_equal(src.values(0, nodes), data[0])

    def test_out_of_range_step_rejected(self, data):
        src = _source_from(data, 8)
        with pytest.raises(ValueError, match="out of range"):
            src.values(37, NodeArray(5))


class TestValidation:
    def test_non_finite_block_rejected(self):
        bad = np.ones((10, 4))
        bad[7, 2] = np.nan

        src = _source_from(bad, 5)
        nodes = NodeArray(4)
        src.values(0, nodes)  # first block is fine
        with pytest.raises(ValueError, match="finite"):
            src.values(5, nodes)

    def test_wrong_width_block_rejected(self):
        def factory():
            yield np.ones((5, 3))

        src = StreamingSource(factory, num_steps=5, n=4)
        with pytest.raises(ValueError, match="shape"):
            src.values(0, NodeArray(4))

    def test_short_stream_detected(self):
        def factory():
            yield np.ones((5, 4))

        src = StreamingSource(factory, num_steps=10, n=4)
        with pytest.raises(ValueError, match="exhausted"):
            src.values(7, NodeArray(4))

    def test_overlong_stream_detected(self):
        def factory():
            yield np.ones((5, 4))
            yield np.ones((5, 4))

        src = StreamingSource(factory, num_steps=7, n=4)
        with pytest.raises(ValueError, match="more than the declared"):
            src.values(6, NodeArray(4))


class TestGroundTruth:
    def test_matches_trace_helpers(self, data):
        src = _source_from(data, 7)
        tr = Trace(data)
        for k in (1, 2, 4):
            assert np.array_equal(src.kth_largest_series(k), tr.kth_largest_series(k))
        assert np.array_equal(src.sigma_series(2, 0.1), tr.sigma_series(2, 0.1))
        assert src.sigma_max(2, 0.1) == tr.sigma_max(2, 0.1)
        assert src.delta == tr.delta
        assert src.min_value == tr.min_value

    def test_materialize_round_trip(self, data):
        assert np.array_equal(_source_from(data, 7).materialize().data, data)

    def test_kth_largest_at_in_step_order(self, data):
        src = _source_from(data, 7)
        tr = Trace(data)
        assert src.kth_largest_at(0, 2) == tr.kth_largest_at(0, 2)
        assert src.kth_largest_at(20, 2) == tr.kth_largest_at(20, 2)

    def test_parameter_validation(self, data):
        src = _source_from(data, 7)
        with pytest.raises(ValueError, match="k="):
            src.kth_largest_series(9)
        with pytest.raises(ValueError, match="eps"):
            src.sigma_series(2, 1.0)


class TestEngineIntegration:
    def test_engine_run_matches_materialized_trace(self):
        """Streaming delivery is invisible to the algorithm: same messages,
        same outputs as the same workload materialized."""
        T, n, k, eps = 400, 16, 4, 0.1
        tr = registry.make("zipf", T, n, rng=21)
        src = registry.stream("zipf", T, n, block_size=64, rng=21)
        res_tr = MonitoringEngine(
            tr, ApproxTopKMonitor(k, eps), k=k, eps=eps, seed=5
        ).run()
        res_src = MonitoringEngine(
            src, ApproxTopKMonitor(k, eps), k=k, eps=eps, seed=5
        ).run()
        assert res_src.messages == res_tr.messages
        assert res_src.output_changes == res_tr.output_changes
        assert np.array_equal(res_src.outputs_array, res_tr.outputs_array)

    def test_engine_resets_the_source_between_runs(self):
        src = registry.stream("iid", 50, 8, block_size=16, rng=3)
        first = MonitoringEngine(src, ApproxTopKMonitor(2, 0.1), k=2, seed=1).run()
        second = MonitoringEngine(src, ApproxTopKMonitor(2, 0.1), k=2, seed=1).run()
        assert first.messages == second.messages


class TestFromNpy:
    def test_streams_a_saved_matrix(self, tmp_path, data):
        path = tmp_path / "trace.npy"
        np.save(path, data)
        src = StreamingSource.from_npy(path, block_size=8)
        assert src.num_steps == 37 and src.n == 5
        assert np.array_equal(src.materialize().data, data)
        assert src.max_resident_rows <= 8

    def test_rejects_non_matrix_files(self, tmp_path):
        path = tmp_path / "vec.npy"
        np.save(path, np.ones(7))
        with pytest.raises(ValueError, match="2-D"):
            StreamingSource.from_npy(path)


class TestMillionStepRun:
    def test_million_by_64_without_materializing(self):
        """The acceptance run: T = 10^6, n = 64, O(n·block) resident.

        Generates and consumes a full million-step streaming pass (the
        k-th-largest ground truth scan plus a delivery walk) while the
        source never holds more than one block of rows.
        """
        T, n, block = 1_000_000, 64, 8192
        src = registry.stream("drift", T, n, block_size=block, rng=0)
        vk = src.kth_largest_series(8)
        assert vk.shape == (T,)
        assert np.isfinite(vk).all()
        # Delivery walk over a sparse set of forward steps (the engine
        # reads every step; the memory accounting is what matters here).
        src.reset()
        nodes = NodeArray(n)
        for t in range(0, T, 50_000):
            assert src.values(t, nodes).shape == (n,)
        assert src.max_resident_rows <= block
        sigma = src.sigma_max(8, 0.05)
        assert sigma >= 8
