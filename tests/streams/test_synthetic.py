"""Unit tests for :mod:`repro.streams.synthetic`."""

import numpy as np
import pytest

from repro.streams.synthetic import iid_uniform, random_walk, sine_drift, step_levels


class TestRandomWalk:
    def test_dimensions_and_range(self):
        tr = random_walk(50, 8, low=0, high=1000, step=10, rng=0)
        assert tr.num_steps == 50 and tr.n == 8
        assert tr.min_value >= 0 and tr.delta <= 1000

    def test_integral(self):
        assert random_walk(20, 4, rng=0).is_integral()

    def test_step_bound(self):
        tr = random_walk(100, 4, low=0, high=10**6, step=5, rng=1)
        diffs = np.abs(np.diff(tr.data, axis=0))
        assert diffs.max() <= 10  # reflection can double a boundary step

    def test_deterministic(self):
        a = random_walk(30, 4, rng=11)
        b = random_walk(30, 4, rng=11)
        assert np.array_equal(a.data, b.data)

    def test_lazy_freezes_nodes(self):
        tr = random_walk(50, 16, lazy=1.0, rng=0)
        assert np.all(tr.data == tr.data[0])

    def test_init_values(self):
        init = np.arange(4, dtype=float) * 100
        tr = random_walk(5, 4, init=init, rng=0)
        assert tr.data[0].tolist() == init.tolist()

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            random_walk(5, 4, low=10, high=10)

    def test_bad_lazy(self):
        with pytest.raises(ValueError):
            random_walk(5, 4, lazy=1.5)


class TestIIDUniform:
    def test_range(self):
        tr = iid_uniform(50, 8, low=10, high=20, rng=0)
        assert tr.min_value >= 10 and tr.delta <= 20

    def test_high_churn(self):
        tr = iid_uniform(50, 8, rng=0)
        assert not np.array_equal(tr.data[0], tr.data[1])


class TestSineDrift:
    def test_nonnegative_integral(self):
        tr = sine_drift(60, 8, rng=0)
        assert tr.min_value >= 0 and tr.is_integral()

    def test_oscillates(self):
        tr = sine_drift(300, 4, noise=0, rng=0)
        assert tr.data[:, 0].std() > 10


class TestStepLevels:
    def test_levels_respected(self):
        tr = step_levels(50, 8, levels=4, spread=100, noise=0, switch_prob=0.0, rng=0)
        unique = np.unique(tr.data)
        assert unique.size <= 4

    def test_switches_happen(self):
        tr = step_levels(200, 8, switch_prob=0.2, noise=0, rng=0)
        assert (np.diff(tr.data, axis=0) != 0).any()
