"""Unit tests for :mod:`repro.streams.transforms`."""

import numpy as np
import pytest

from repro.model.invariants import exact_topk_set
from repro.streams.base import Trace
from repro.streams.transforms import clip_trace, make_distinct, quantize


class TestMakeDistinct:
    def test_all_distinct(self):
        tr = Trace(np.array([[5.0, 5.0, 5.0], [1.0, 2.0, 1.0]]))
        out = make_distinct(tr)
        assert out.has_distinct_columns()

    def test_order_preserving(self):
        tr = Trace(np.array([[1.0, 3.0, 2.0]]))
        out = make_distinct(tr)
        assert np.argsort(out.data[0]).tolist() == np.argsort(tr.data[0]).tolist()

    def test_tie_break_lower_id_wins(self):
        tr = Trace(np.array([[7.0, 7.0, 7.0]]))
        out = make_distinct(tr)
        assert exact_topk_set(out.data[0], 1) == {0}
        assert exact_topk_set(out.data[0], 2) == {0, 1}

    def test_rejects_float_traces(self):
        with pytest.raises(ValueError, match="integer"):
            make_distinct(Trace(np.array([[1.5, 2.0]])))

    def test_delta_scales_by_n(self):
        tr = Trace(np.array([[4.0, 1.0, 0.0]]))
        out = make_distinct(tr)
        assert out.delta == 4.0 * 3 + 2  # v*n + (n-1-i) for i=0

    def test_overflow_guard_at_the_float64_boundary(self):
        """v*n + (n-1) beyond 2^53 would corrupt ordering; just below is fine."""
        n = 4
        safe = float((2**53 - (n - 1)) // n)  # largest v with exact codes
        out = make_distinct(Trace(np.array([[safe, 1.0, 0.0, 2.0]])))
        assert out.has_distinct_columns()
        with pytest.raises(ValueError, match="order-preserving"):
            make_distinct(Trace(np.array([[safe + 1.0, 1.0, 0.0, 2.0]])))

    def test_overflow_guard_message_names_the_limit(self):
        with pytest.raises(ValueError, match="2\\^53"):
            make_distinct(Trace(np.array([[2.0**60, 1.0]])))


class TestClip:
    def test_clip(self):
        tr = Trace(np.array([[1.0, 50.0], [100.0, 3.0]]))
        out = clip_trace(tr, 2.0, 60.0)
        assert out.data.min() == 2.0 and out.data.max() == 60.0

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            clip_trace(Trace(np.ones((1, 2))), 5.0, 5.0)


class TestQuantize:
    def test_grid(self):
        tr = Trace(np.array([[1.2, 7.7]]))
        out = quantize(tr, 0.5)
        assert out.data.tolist() == [[1.0, 7.5]]

    def test_bad_grid(self):
        with pytest.raises(ValueError):
            quantize(Trace(np.ones((1, 2))), 0.0)
