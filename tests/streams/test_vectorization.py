"""Byte-identity regression tests for the vectorized generators.

The scan vectorization of ``cluster_load``, ``sensor_field`` and
``step_levels`` (PR 2) must not change a single bit of any generated
trace: cached sweep tables and every number recorded in EXPERIMENTS.md
depend on it.  Two guards:

- reference tests re-run the original per-step loops (inlined below,
  verbatim from the pre-vectorization code) and compare bytes;
- golden SHA-256 hashes frozen from the pre-vectorization generators
  pin a sample of parameter points against both regressions *and*
  accidental RNG-stream reordering.
"""

import hashlib

import numpy as np
import pytest

from repro.streams.workloads import _ar1_scan, cluster_load, sensor_field
from repro.streams.synthetic import step_levels
from repro.util.rngtools import make_rng


def _sha(tr) -> str:
    return hashlib.sha256(tr.data.tobytes()).hexdigest()[:16]


# ------------------------------------------------------------------ #
# Reference implementations: the original per-step loops, verbatim.
# ------------------------------------------------------------------ #
def _cluster_load_reference(num_steps, n, *, base=5_000.0, diurnal_amplitude=1_500.0,
                            period=500.0, ar_coeff=0.9, noise=60.0, burst_prob=0.002,
                            burst_height=6_000.0, burst_length=40, rng=None):
    rng = make_rng(rng)
    phases = rng.uniform(0.0, 2 * np.pi, size=n)
    skews = rng.uniform(-0.3, 0.3, size=n) * diurnal_amplitude
    t = np.arange(num_steps, dtype=np.float64)[:, None]
    diurnal = diurnal_amplitude * np.sin(2 * np.pi * t / period + phases[None, :])
    ar = np.zeros((num_steps, n))
    innovations = rng.normal(0.0, noise, size=(num_steps, n))
    for step in range(1, num_steps):
        ar[step] = ar_coeff * ar[step - 1] + innovations[step]
    bursts = np.zeros((num_steps, n))
    triggers = np.argwhere(rng.random((num_steps, n)) < burst_prob)
    for start, node in triggers:
        stop = min(num_steps, start + burst_length)
        ramp = np.linspace(1.0, 0.3, stop - start)
        bursts[start:stop, node] += burst_height * ramp
    data = np.maximum(base + skews[None, :] + diurnal + ar + bursts, 0.0)
    return np.round(data)


def _sensor_field_reference(num_steps, n, k, *, eps=0.1, band=None, level=10_000.0,
                            band_spread=0.5, wobble=0.35, low_fraction=0.45, rng=None):
    if band is None:
        band = min(n, 2 * k)
    rng = make_rng(rng)
    lo = (1.0 - eps * band_spread) * level
    hi = level / (1.0 - eps * band_spread)
    width = hi - lo
    step = max(1.0, wobble * width / 4.0)
    data = np.empty((num_steps, n), dtype=np.float64)
    band_vals = rng.uniform(lo, hi, size=band)
    low_level = low_fraction * (1.0 - eps) * level
    low_vals = rng.uniform(0.9 * low_level, 1.1 * low_level, size=n - band)
    for t in range(num_steps):
        data[t, :band] = band_vals
        data[t, band:] = low_vals
        moves = rng.uniform(-step, step, size=band)
        band_vals = band_vals + moves
        band_vals = np.where(band_vals < lo, 2 * lo - band_vals, band_vals)
        band_vals = np.where(band_vals > hi, 2 * hi - band_vals, band_vals)
        band_vals = np.clip(band_vals, lo, hi)
        low_vals = low_vals + rng.uniform(-2.0, 2.0, size=n - band)
        low_vals = np.clip(low_vals, 0.0, 1.2 * low_level)
    return np.round(data)


def _step_levels_reference(num_steps, n, *, levels=8, spread=1000.0,
                           switch_prob=0.01, noise=2.0, rng=None):
    rng = make_rng(rng)
    level_values = np.linspace(spread / levels, spread, levels)
    assignment = rng.integers(0, levels, size=n)
    data = np.empty((num_steps, n), dtype=np.float64)
    for t in range(num_steps):
        switches = rng.random(n) < switch_prob
        if switches.any():
            assignment[switches] = rng.integers(0, levels, size=int(switches.sum()))
        jitter = rng.integers(-int(noise), int(noise) + 1, size=n) if noise >= 1 else 0
        data[t] = np.maximum(level_values[assignment] + jitter, 0.0)
    return np.round(data)


class TestAgainstReferenceLoops:
    @pytest.mark.parametrize("kwargs", [
        dict(num_steps=300, n=12, rng=0),
        dict(num_steps=500, n=24, ar_coeff=0.97, noise=20.0, rng=7),
        dict(num_steps=150, n=6, burst_prob=0.05, rng=3),
        dict(num_steps=100, n=4, ar_coeff=0.0, rng=1),
    ])
    def test_cluster_load(self, kwargs):
        assert cluster_load(**kwargs).data.tobytes() == \
            _cluster_load_reference(**kwargs).tobytes()

    @pytest.mark.parametrize("kwargs", [
        dict(num_steps=300, n=16, k=3, rng=1),
        dict(num_steps=200, n=24, k=4, eps=0.2, band=10, wobble=0.9, rng=5),
        dict(num_steps=120, n=8, k=3, band=8, rng=2),  # band == n: no low nodes
    ])
    def test_sensor_field(self, kwargs):
        assert sensor_field(**kwargs).data.tobytes() == \
            _sensor_field_reference(**kwargs).tobytes()

    @pytest.mark.parametrize("kwargs", [
        dict(num_steps=400, n=16, rng=2),
        dict(num_steps=300, n=8, levels=4, switch_prob=0.3, noise=0.0, rng=11),
        dict(num_steps=200, n=8, switch_prob=0.0, rng=13),
        dict(num_steps=200, n=8, switch_prob=1.0, noise=5.0, rng=17),
    ])
    def test_step_levels(self, kwargs):
        assert step_levels(**kwargs).data.tobytes() == \
            _step_levels_reference(**kwargs).tobytes()


class TestGoldenHashes:
    """Frozen from the pre-vectorization generators (seed state ffc95aa)."""

    @pytest.mark.parametrize("expected,build", [
        ("bc476615934b71e6", lambda: cluster_load(400, 16, rng=0)),
        ("9952e8cd9f1eebea", lambda: cluster_load(1500, 48, noise=20.0, ar_coeff=0.97, rng=7)),
        ("32289989e649479b", lambda: cluster_load(200, 8, burst_prob=0.05, rng=3)),
        ("6dacec9123e41c9b", lambda: sensor_field(400, 24, 4, eps=0.1, band=8, rng=1)),
        ("941fa04c8f18d929", lambda: sensor_field(900, 64, 8, eps=0.2, band=20, wobble=0.9, rng=5)),
        ("b29d0cb919a0f283", lambda: sensor_field(100, 16, 3, rng=9)),
        ("6f2eafe6a8cb9f32", lambda: step_levels(500, 32, rng=2)),
        ("8588887838b3c91e", lambda: step_levels(300, 16, levels=4, switch_prob=0.2, noise=0.0, rng=11)),
        ("f703cfa85fea877e", lambda: step_levels(300, 16, levels=4, switch_prob=0.0, rng=13)),
    ])
    def test_trace_bytes_unchanged(self, expected, build):
        assert _sha(build()) == expected


class TestAr1Scan:
    def test_matches_explicit_recursion(self):
        rng = np.random.default_rng(0)
        for coeff in (0.0, 0.5, 0.9, 0.97):
            x = rng.normal(0.0, 3.0, size=(500, 7))
            y = np.zeros_like(x)
            y[0] = x[0]
            for t in range(1, 500):
                y[t] = coeff * y[t - 1] + x[t]
            assert _ar1_scan(x, coeff).tobytes() == y.tobytes()
