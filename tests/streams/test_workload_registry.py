"""Tests for :mod:`repro.streams.registry` — incl. the per-workload laws.

Every registered workload must satisfy the registry contract:

- fixed seed ⇒ byte-identical trace,
- all values finite,
- the declared integrality flag holds,
- the declared param schema matches the factory signature, and
- the registry round-trips: ``make(slug, ...)`` equals calling the
  factory directly.
"""

import inspect

import numpy as np
import pytest

from repro.streams import registry
from repro.streams.base import Trace
from repro.streams.registry import REQUIRED, Param, WorkloadSpec
from repro.streams.scenarios import save_trace, zipf_load

ALL_SLUGS = registry.available()
#: Workloads runnable without external input (replay needs a file).
RUNNABLE = [s for s in ALL_SLUGS if registry.get(s).example_params is not None]
STREAMING = [s for s in RUNNABLE if registry.get(s).streaming]


def _example(slug: str) -> dict:
    return dict(registry.get(slug).example_params or {})


class TestCatalog:
    def test_expected_slugs_registered(self):
        assert set(ALL_SLUGS) >= {
            "walk", "iid", "sine", "levels", "cluster", "sensor",
            "zipf", "markov", "drift", "correlated", "churn", "replay",
        }

    def test_unknown_slug_lists_the_catalog(self):
        with pytest.raises(KeyError, match="registered: walk"):
            registry.get("nope")

    def test_specs_are_complete(self):
        for slug in ALL_SLUGS:
            spec = registry.get(slug)
            assert spec.summary
            assert callable(spec.factory)


@pytest.mark.parametrize("slug", RUNNABLE)
class TestWorkloadLaws:
    def test_fixed_seed_is_byte_identical(self, slug):
        a = registry.make(slug, 60, 9, rng=123, **_example(slug))
        b = registry.make(slug, 60, 9, rng=123, **_example(slug))
        assert a.data.tobytes() == b.data.tobytes()

    def test_values_finite_and_shaped(self, slug):
        tr = registry.make(slug, 40, 8, rng=5, **_example(slug))
        assert tr.num_steps == 40 and tr.n == 8
        assert np.isfinite(tr.data).all()

    def test_declared_integrality_holds(self, slug):
        spec = registry.get(slug)
        tr = registry.make(slug, 50, 8, rng=9, **_example(slug))
        if spec.integral:
            assert tr.is_integral(), f"{slug} declares integral values"

    def test_round_trip_equals_direct_factory_call(self, slug):
        spec = registry.get(slug)
        via_registry = registry.make(slug, 30, 6, rng=7, **_example(slug))
        direct = spec.factory(30, 6, rng=7, **_example(slug))
        assert np.array_equal(via_registry.data, direct.data)


@pytest.mark.parametrize("slug", ALL_SLUGS)
class TestSchema:
    def test_declared_schema_matches_factory_signature(self, slug):
        spec = registry.get(slug)
        sig = inspect.signature(spec.factory)
        assert list(sig.parameters)[:2] == ["num_steps", "n"]
        actual = {
            name: par for name, par in sig.parameters.items()
            if name not in ("num_steps", "n", "rng")
        }
        declared = {p.name: p for p in spec.params}
        assert set(declared) == set(actual)
        for name, par in actual.items():
            if par.default is inspect.Parameter.empty:
                assert declared[name].required, f"{slug}.{name}"
            else:
                assert not declared[name].required, f"{slug}.{name}"
                assert declared[name].default == par.default, f"{slug}.{name}"

    def test_block_fn_schema_matches(self, slug):
        spec = registry.get(slug)
        if spec.block_fn is None:
            pytest.skip("not streamable")
        block_params = {
            name for name in inspect.signature(spec.block_fn).parameters
            if name not in ("num_steps", "n", "block_size", "rng")
        }
        assert block_params == {p.name for p in spec.params}


class TestParamHandling:
    def test_unknown_param_rejected(self):
        with pytest.raises(TypeError, match="unknown params"):
            registry.make("zipf", 10, 4, rng=0, alpah=1.2)

    def test_missing_required_param_rejected(self):
        with pytest.raises(TypeError, match="requires params \\['k'\\]"):
            registry.make("sensor", 10, 8, rng=0)

    def test_cli_parse_coerces_types(self):
        parsed = registry.parse_cli_params(
            "sensor", ["k=3", "eps=0.2", "level=5000"]
        )
        assert parsed == {"k": 3, "eps": 0.2, "level": 5000.0}
        assert isinstance(parsed["k"], int)

    def test_cli_parse_rejects_bad_tokens(self):
        with pytest.raises(ValueError, match="key=value"):
            registry.parse_cli_params("zipf", ["alpha"])
        with pytest.raises(KeyError, match="no param"):
            registry.parse_cli_params("zipf", ["alpah=1.2"])

    def test_cli_parse_rejects_array_params(self):
        with pytest.raises(ValueError, match="command line"):
            registry.parse_cli_params("walk", ["init=3"])


class TestRegistration:
    def test_duplicate_slug_rejected(self):
        spec = registry.get("zipf")
        with pytest.raises(ValueError, match="already registered"):
            registry.register(spec)

    def test_schema_drift_rejected(self):
        bad = WorkloadSpec(
            slug="zipf-dup-test",
            factory=zipf_load,
            summary="schema drift",
            params=(Param("alpha", "float", 1.6),),  # missing scale/churn/noise
        )
        with pytest.raises(TypeError, match="do not match factory signature"):
            registry.register(bad)

    def test_wrong_default_rejected(self):
        bad = WorkloadSpec(
            slug="zipf-dup-test2",
            factory=zipf_load,
            summary="wrong default",
            params=(
                Param("alpha", "float", 9.9),
                Param("scale", "float", 1_000.0),
                Param("churn", "float", 0.002),
                Param("noise", "float", 0.01),
            ),
        )
        with pytest.raises(TypeError, match="declares default"):
            registry.register(bad)

    def test_param_kind_validated(self):
        with pytest.raises(ValueError, match="unknown kind"):
            Param("x", "complex")

    def test_required_sentinel(self):
        assert Param("x", "int").required
        assert Param("x", "int", 3).default == 3
        assert Param("x", "int").default is REQUIRED


class TestReplaySlug:
    def test_replay_through_registry(self, tmp_path):
        tr = registry.make("zipf", 40, 6, rng=1)
        path = save_trace(tr, tmp_path / "t")
        again = registry.make("replay", 40, 6, path=str(path))
        assert np.array_equal(again.data, tr.data)
        front = registry.make("replay", 10, 6, path=str(path))
        assert np.array_equal(front.data, tr.data[:10])

    def test_replay_shape_mismatch_rejected(self, tmp_path):
        path = save_trace(Trace(np.ones((5, 4))), tmp_path / "t")
        with pytest.raises(ValueError, match="n=4"):
            registry.make("replay", 5, 8, path=str(path))
        with pytest.raises(ValueError, match="only T=5"):
            registry.make("replay", 50, 4, path=str(path))


@pytest.mark.parametrize("slug", STREAMING)
class TestStreamEqualsMake:
    def test_stream_matches_make_at_odd_block_sizes(self, slug):
        ex = _example(slug)
        tr = registry.make(slug, 230, 7, rng=11, **ex)
        for block_size in (13, 230, 1024):
            src = registry.stream(slug, 230, 7, block_size=block_size, rng=11, **ex)
            assert np.array_equal(src.materialize().data, tr.data), block_size

    def test_stream_is_restartable(self, slug):
        ex = _example(slug)
        src = registry.stream(slug, 50, 6, block_size=16, rng=3, **ex)
        first = src.materialize().data
        second = src.materialize().data  # fresh pass, same seed
        assert np.array_equal(first, second)


def test_stream_rejects_non_streamable_slug():
    with pytest.raises(TypeError, match="not block-streamable"):
        registry.stream("cluster", 100, 8, rng=0)


def test_stream_runs_the_factory_range_validation():
    """Out-of-range params must fail in stream() exactly as in make()."""
    with pytest.raises(ValueError, match="lazy"):
        registry.stream("walk", 100, 8, lazy=2.0, rng=0)
    with pytest.raises(ValueError, match="churn"):
        registry.stream("zipf", 100, 8, churn=1.5, rng=0)
    with pytest.raises(ValueError, match="rho"):
        registry.stream("correlated", 100, 8, rho=-0.1, rng=0)
