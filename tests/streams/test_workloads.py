"""Unit tests for :mod:`repro.streams.workloads`."""

import numpy as np
import pytest

from repro.streams.workloads import cluster_load, sensor_field


class TestClusterLoad:
    def test_shape_and_domain(self):
        tr = cluster_load(100, 16, rng=0)
        assert tr.num_steps == 100 and tr.n == 16
        assert tr.min_value >= 0 and tr.is_integral()

    def test_bursts_create_spikes(self):
        quiet = cluster_load(400, 8, burst_prob=0.0, rng=5)
        bursty = cluster_load(400, 8, burst_prob=0.01, burst_height=50_000, rng=5)
        assert bursty.delta > quiet.delta + 10_000

    def test_deterministic(self):
        a = cluster_load(50, 8, rng=3)
        b = cluster_load(50, 8, rng=3)
        assert np.array_equal(a.data, b.data)

    def test_ar_coeff_validated(self):
        with pytest.raises(ValueError):
            cluster_load(10, 4, ar_coeff=1.0)


class TestSensorField:
    def test_sigma_tracks_band(self):
        """The band parameter directly controls the paper's σ."""
        for band in (6, 12):
            tr = sensor_field(80, 24, 4, eps=0.1, band=band, rng=1)
            sig = tr.sigma_max(4, 0.1)
            assert band - 1 <= sig <= band + 2, f"band={band} gave sigma={sig}"

    def test_low_nodes_stay_clear(self):
        tr = sensor_field(80, 24, 4, eps=0.1, band=8, rng=1)
        vk = tr.kth_largest_series(4)
        low_max = tr.data[:, 8:].max()
        assert low_max < 0.9 * (1 - 0.1) * vk.min()

    def test_band_validation(self):
        with pytest.raises(ValueError, match="band"):
            sensor_field(10, 24, 4, band=4)  # band must exceed k
        with pytest.raises(ValueError, match="band"):
            sensor_field(10, 24, 4, band=25)

    def test_default_band_is_2k(self):
        tr = sensor_field(40, 32, 5, eps=0.1, rng=0)
        assert 8 <= tr.sigma_max(5, 0.1) <= 12

    def test_integral_and_deterministic(self):
        a = sensor_field(30, 16, 3, rng=9)
        b = sensor_field(30, 16, 3, rng=9)
        assert a.is_integral()
        assert np.array_equal(a.data, b.data)
