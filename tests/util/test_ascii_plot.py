"""Unit tests for :mod:`repro.util.ascii_plot`."""

import pytest

from repro.util.ascii_plot import Series, histogram, line_plot


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="len"):
            Series("s", [1, 2], [1])


class TestLinePlot:
    def test_contains_legend_and_axes(self):
        out = line_plot(
            [Series("alpha", [1, 2, 3], [1, 4, 9])],
            title="squares",
            xlabel="x",
            ylabel="y",
        )
        assert "squares" in out
        assert "legend: * alpha" in out
        assert "x: x   y: y" in out

    def test_multiple_series_get_distinct_glyphs(self):
        out = line_plot(
            [Series("a", [1, 2], [1, 2]), Series("b", [1, 2], [2, 1])],
        )
        assert "* a" in out and "o b" in out

    def test_log_scale_label(self):
        out = line_plot(
            [Series("a", [1, 10, 100], [1, 2, 3])],
            logx=True,
        )
        assert "log-x" in out

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            line_plot([Series("a", [0, 1], [1, 2])], logx=True)

    def test_empty_series_handled(self):
        out = line_plot([Series("a", [], [])], title="t")
        assert "no data" in out

    def test_constant_series_does_not_crash(self):
        out = line_plot([Series("a", [1, 2, 3], [5, 5, 5])])
        assert "legend" in out

    def test_grid_dimensions(self):
        out = line_plot([Series("a", [0, 1], [0, 1])], width=40, height=10)
        grid_rows = [row for row in out.splitlines() if row.rstrip().endswith("|")]
        assert len(grid_rows) == 10


class TestHistogram:
    def test_counts_sum(self):
        out = histogram([1, 1, 2, 3, 3, 3], bins=3)
        # Counts appear at line ends.
        counts = [int(line.rsplit(" ", 1)[1]) for line in out.splitlines()]
        assert sum(counts) == 6

    def test_title(self):
        assert histogram([1, 2], title="msgs").startswith("msgs")

    def test_empty(self):
        assert "no data" in histogram([])

    def test_constant_values(self):
        out = histogram([5, 5, 5], bins=4)
        assert "3" in out
