"""Unit tests for :mod:`repro.util.checks`."""

import math

import pytest

from repro.util.checks import (
    check_epsilon,
    check_finite,
    check_k,
    check_nonneg_int,
    check_positive_int,
    require,
)


class TestRequire:
    def test_pass(self):
        require(True, "never")

    def test_fail(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestIntChecks:
    def test_positive_ok(self):
        assert check_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_positive_rejects_small(self, bad):
        with pytest.raises(ValueError):
            check_positive_int(bad, "x")

    @pytest.mark.parametrize("bad", [1.5, "3", True])
    def test_positive_rejects_non_int(self, bad):
        with pytest.raises(TypeError):
            check_positive_int(bad, "x")

    def test_nonneg_accepts_zero(self):
        assert check_nonneg_int(0, "x") == 0

    def test_nonneg_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonneg_int(-1, "x")


class TestEpsilon:
    def test_open_interval(self):
        assert check_epsilon(0.25) == 0.25

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_boundary(self, bad):
        with pytest.raises(ValueError):
            check_epsilon(bad)

    def test_allow_zero(self):
        assert check_epsilon(0.0, allow_zero=True) == 0.0
        with pytest.raises(ValueError):
            check_epsilon(1.0, allow_zero=True)


class TestK:
    def test_ok(self):
        assert check_k(3, 10) == 3

    def test_k_equal_n_rejected(self):
        with pytest.raises(ValueError, match="trivial"):
            check_k(10, 10)


class TestFinite:
    def test_ok(self):
        assert check_finite(1.5, "x") == 1.5

    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
    def test_rejects_nonfinite(self, bad):
        with pytest.raises(ValueError):
            check_finite(bad, "x")
