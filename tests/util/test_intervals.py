"""Unit tests for :mod:`repro.util.intervals`."""

import math

import pytest

from repro.util.intervals import EMPTY, Interval


class TestConstruction:
    def test_point(self):
        p = Interval.point(5.0)
        assert p.lo == p.hi == 5.0
        assert not p.is_empty

    def test_at_least_is_upward_closed(self):
        f = Interval.at_least(3.0)
        assert 3.0 in f
        assert math.inf in f
        assert 2.999 not in f

    def test_at_most_is_downward_closed(self):
        f = Interval.at_most(3.0)
        assert 3.0 in f
        assert -math.inf in f
        assert 3.001 not in f

    def test_everything_contains_all(self):
        assert 0.0 in Interval.everything()
        assert 1e300 in Interval.everything()

    def test_empty_is_empty(self):
        assert EMPTY.is_empty
        assert Interval.empty().is_empty
        assert 0.0 not in EMPTY


class TestPredicates:
    def test_membership_is_closed(self):
        itv = Interval(1.0, 2.0)
        assert 1.0 in itv and 2.0 in itv
        assert 0.999 not in itv and 2.001 not in itv

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 3))
        assert not Interval(0, 10).contains_interval(Interval(2, 11))

    def test_empty_subset_of_everything(self):
        assert Interval(5, 6).contains_interval(EMPTY)

    def test_overlaps(self):
        assert Interval(0, 2).overlaps(Interval(2, 4))  # closed: share 2
        assert not Interval(0, 2).overlaps(Interval(3, 4))
        assert not EMPTY.overlaps(Interval(0, 1))


class TestMeasures:
    def test_width(self):
        assert Interval(1, 4).width == 3.0
        assert EMPTY.width == 0.0

    def test_midpoint(self):
        assert Interval(2, 4).midpoint == 3.0

    def test_midpoint_of_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            _ = EMPTY.midpoint

    def test_midpoint_of_unbounded_raises(self):
        with pytest.raises(ValueError, match="unbounded"):
            _ = Interval.at_least(0.0).midpoint


class TestCombinators:
    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)

    def test_intersect_disjoint_is_empty(self):
        assert Interval(0, 1).intersect(Interval(2, 3)).is_empty

    def test_clamp_above_models_violation_from_below(self):
        # A node outside F rose to 7: the separator must be >= 7.
        assert Interval(0, 10).clamp_above(7.0) == Interval(7, 10)

    def test_clamp_below_models_violation_from_above(self):
        assert Interval(0, 10).clamp_below(7.0) == Interval(0, 7)

    def test_clamp_can_empty(self):
        assert Interval(0, 5).clamp_above(6.0).is_empty

    def test_halves_cover_and_meet_at_midpoint(self):
        itv = Interval(0, 8)
        assert itv.lower_half() == Interval(0, 4)
        assert itv.upper_half() == Interval(4, 8)

    def test_half_of_point_is_empty(self):
        assert Interval.point(3.0).lower_half().is_empty
        assert Interval.point(3.0).upper_half().is_empty

    def test_repeated_halving_reaches_resolution(self):
        itv = Interval(0, 1024)
        count = 0
        while not itv.is_degenerate(1.0):
            itv = itv.lower_half()
            count += 1
        # log2(1024) halvings reach width == 1, one more takes it below.
        assert count == 11

    def test_is_degenerate_empty(self):
        assert EMPTY.is_degenerate(1e-12)

    def test_is_degenerate_by_width(self):
        assert Interval(0, 0.5).is_degenerate(1.0)
        assert not Interval(0, 1.5).is_degenerate(1.0)


class TestDunder:
    def test_iter_unpacks(self):
        lo, hi = Interval(1, 2)
        assert (lo, hi) == (1.0, 2.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Interval(0, 1).lo = 5  # type: ignore[misc]
