"""Unit tests for :mod:`repro.util.mathx` (the Sect. 4 phase predicates)."""

import math

import pytest

from repro.util.mathx import (
    ceil_log2,
    double_exp,
    geometric_midpoint,
    log2,
    loglog2,
    phase_p1,
    phase_p2,
    phase_p3,
    phase_p4,
)


class TestLogs:
    def test_log2_total(self):
        assert log2(8.0) == 3.0
        assert log2(0.0) == -math.inf
        assert log2(-1.0) == -math.inf

    def test_loglog2_large(self):
        assert loglog2(16.0) == 2.0  # log2(log2(16)) = log2(4)
        assert loglog2(2.0**16) == 4.0

    def test_loglog2_small_domain_maps_to_minus_inf(self):
        # Everything <= 2 maps to -inf (keeps A1 out of degenerate gaps).
        assert loglog2(2.0) == -math.inf
        assert loglog2(1.5) == -math.inf
        assert loglog2(0.0) == -math.inf

    def test_loglog2_monotone_above_two(self):
        xs = [2.1, 3.0, 10.0, 100.0, 1e6]
        ys = [loglog2(x) for x in xs]
        assert ys == sorted(ys)


class TestPhasePredicates:
    def test_p1_huge_gap(self):
        # l = 2^4, u = 2^64: loglog u = 6 > loglog l + 1 = 3.
        assert phase_p1(16.0, 2.0**64)

    def test_p1_fails_same_magnitude(self):
        assert not phase_p1(2.0**30, 2.0**40)  # loglog gap < 1

    def test_p1_fails_for_tiny_upper(self):
        # u <= 2 never arms the doubly-exponential search.
        assert not phase_p1(0.0, 2.0)
        assert not phase_p1(0.0, 1.5)

    def test_p2_requires_not_p1_and_quad_gap(self):
        assert phase_p2(2.0**30, 2.0**40)
        assert not phase_p2(16.0, 2.0**64)  # P1 holds there
        assert not phase_p2(100.0, 300.0)  # u < 4l

    def test_p3_band(self):
        # u <= 4l but still wider than the eps overlap.
        assert phase_p3(100.0, 300.0, eps=0.1)
        assert not phase_p3(100.0, 500.0, eps=0.1)  # u > 4l
        assert not phase_p3(100.0, 105.0, eps=0.1)  # already in P4

    def test_p4_overlap(self):
        assert phase_p4(100.0, 105.0, eps=0.1)  # 105*(0.9) = 94.5 <= 100
        assert not phase_p4(100.0, 300.0, eps=0.1)

    @pytest.mark.parametrize(
        "lo,hi",
        [(0.0, 1.0), (0.0, 2.0), (1.0, 1.0), (5.0, 5.0), (16.0, 2.0**64),
         (2.0**30, 2.0**40), (100.0, 300.0), (100.0, 105.0), (0.0, 2.0**40)],
    )
    def test_ordered_dispatch_is_total(self, lo, hi):
        """Every valid [lo, hi] lands in exactly one ordered branch."""
        eps = 0.25
        branches = [
            phase_p1(lo, hi),
            (not phase_p1(lo, hi)) and hi > 4 * lo,
            hi <= 4 * lo and hi * (1 - eps) > lo,
            hi * (1 - eps) <= lo,
        ]
        assert any(branches)


class TestHelpers:
    def test_ceil_log2(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(1024) == 10
        assert ceil_log2(1025) == 11

    def test_geometric_midpoint_in_range(self):
        m = geometric_midpoint(4.0, 64.0)
        assert m == pytest.approx(16.0)
        assert 4.0 <= m <= 64.0

    def test_geometric_midpoint_is_log_midpoint(self):
        lo, hi = 3.0, 1000.0
        m = geometric_midpoint(lo, hi)
        assert math.log2(m) == pytest.approx((math.log2(lo) + math.log2(hi)) / 2)

    def test_geometric_midpoint_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_midpoint(0.0, 8.0)

    def test_double_exp_values(self):
        assert double_exp(0) == 2.0
        assert double_exp(1) == 4.0
        assert double_exp(3) == 256.0

    def test_double_exp_overflow_clamps_to_inf(self):
        assert double_exp(11) == math.inf

    def test_double_exp_rejects_negative(self):
        with pytest.raises(ValueError):
            double_exp(-1)
