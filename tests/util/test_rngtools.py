"""Unit tests for :mod:`repro.util.rngtools`."""

import numpy as np

from repro.util.rngtools import make_rng, rng_stream, spawn


class TestMakeRng:
    def test_int_seed_deterministic(self):
        a = make_rng(42).integers(0, 1 << 30, 10)
        b = make_rng(42).integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_are_independent_and_deterministic(self):
        kids_a = spawn(make_rng(7), 3)
        kids_b = spawn(make_rng(7), 3)
        for ka, kb in zip(kids_a, kids_b):
            assert np.array_equal(ka.integers(0, 1 << 30, 5), kb.integers(0, 1 << 30, 5))

    def test_children_differ_from_each_other(self):
        kids = spawn(make_rng(7), 2)
        assert not np.array_equal(
            kids[0].integers(0, 1 << 30, 10), kids[1].integers(0, 1 << 30, 10)
        )

    def test_spawn_from_passthrough_generator(self):
        # A generator without a fresh SeedSequence still spawns children.
        g = np.random.default_rng(1)
        g.random()  # advance state
        kids = spawn(g, 2)
        assert len(kids) == 2


class TestRngStream:
    def test_labels_and_determinism(self):
        s1 = dict(rng_stream(5, ["a", "b"]))
        s2 = dict(rng_stream(5, ["a", "b"]))
        assert set(s1) == {"a", "b"}
        assert np.array_equal(s1["a"].integers(0, 100, 5), s2["a"].integers(0, 100, 5))

    def test_different_labels_different_streams(self):
        s = dict(rng_stream(5, ["a", "b"]))
        assert not np.array_equal(s["a"].integers(0, 100, 10), s["b"].integers(0, 100, 10))
