"""Unit tests for :mod:`repro.util.tables`."""

import pytest

from repro.util.tables import Table


@pytest.fixture
def table() -> Table:
    t = Table(["n", "messages", "ratio"], title="demo")
    t.add(16, 120, 1.5)
    t.add(32, 240, 1.75)
    return t


class TestBuilding:
    def test_positional_add(self, table):
        assert len(table) == 2

    def test_named_add(self, table):
        table.add(n=64, messages=480, ratio=2.0)
        assert table.rows[-1] == (64, 480, 2.0)

    def test_mixed_add_rejected(self, table):
        with pytest.raises(TypeError):
            table.add(1, messages=2)

    def test_wrong_arity_rejected(self, table):
        with pytest.raises(ValueError):
            table.add(1, 2)

    def test_named_mismatch_rejected(self, table):
        with pytest.raises(ValueError, match="missing"):
            table.add(n=1, messages=2)

    def test_extend(self, table):
        table.extend([{"n": 64, "messages": 1, "ratio": 0.5}])
        assert len(table) == 3

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Table(["a", "a"])


class TestAccess:
    def test_column(self, table):
        assert table.column("n") == [16, 32]

    def test_unknown_column(self, table):
        with pytest.raises(KeyError):
            table.column("nope")

    def test_iter_yields_dicts(self, table):
        rows = list(table)
        assert rows[0] == {"n": 16, "messages": 120, "ratio": 1.5}

    def test_where(self, table):
        small = table.where(lambda r: r["n"] < 20)
        assert len(small) == 1 and small.rows[0][0] == 16


class TestRendering:
    def test_markdown_structure(self, table):
        md = table.to_markdown()
        lines = md.splitlines()
        assert lines[0] == "**demo**"
        assert lines[2] == "| n | messages | ratio |"
        assert lines[3].startswith("|---")
        assert "| 16 | 120 | 1.5 |" in md

    def test_csv(self, table):
        csv = table.to_csv().splitlines()
        assert csv[0] == "n,messages,ratio"
        assert csv[1] == "16,120,1.5"

    def test_float_formatting(self):
        t = Table(["x"])
        t.add(1.23456789)
        assert "1.235" in t.to_markdown()

    def test_integral_float_rendered_as_int(self):
        t = Table(["x"])
        t.add(4.0)
        assert "| 4 |" in t.to_markdown()

    def test_nan_rendered(self):
        t = Table(["x"])
        t.add(float("nan"))
        assert "nan" in t.to_csv()
